package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// TraceDiff is the outcome of comparing two event traces. Equal means
// the event sequences match exactly; header meta differences (seed,
// strategy, ...) are reported separately because two runs of different
// configurations are expected to carry different provenance.
type TraceDiff struct {
	// Equal is true when both traces contain the same events in the
	// same order.
	Equal bool
	// MetaDiffs lists header meta mismatches, one per key.
	MetaDiffs []string
	// EventsA and EventsB are the total event counts.
	EventsA, EventsB int64
	// FirstDivergence is the 0-based index of the first differing
	// event, or -1 when the sequences are equal. When one trace is a
	// strict prefix of the other, it is the length of the shorter one.
	FirstDivergence int64
	// A and B are the events at the divergence; nil on the side whose
	// trace ended first.
	A, B *TraceEvent
}

// DiffTraces streams two event traces and locates their first
// divergence — the cross-run determinism check: two replays with equal
// config and seed must produce Equal traces; anything else names the
// first simulated event where the histories fork.
func DiffTraces(a, b io.Reader) (*TraceDiff, error) {
	ra, err := OpenTrace(a)
	if err != nil {
		return nil, fmt.Errorf("trace A: %w", err)
	}
	rb, err := OpenTrace(b)
	if err != nil {
		return nil, fmt.Errorf("trace B: %w", err)
	}
	d := &TraceDiff{
		MetaDiffs:       metaDiff(ra.Header().Meta, rb.Header().Meta),
		FirstDivergence: -1,
	}
	for i := int64(0); ; i++ {
		ea, errA := ra.Next()
		eb, errB := rb.Next()
		doneA, doneB := errA == io.EOF, errB == io.EOF
		if errA != nil && !doneA {
			return nil, fmt.Errorf("trace A: %w", errA)
		}
		if errB != nil && !doneB {
			return nil, fmt.Errorf("trace B: %w", errB)
		}
		if !doneA {
			d.EventsA++
		}
		if !doneB {
			d.EventsB++
		}
		switch {
		case doneA && doneB:
			d.Equal = d.FirstDivergence < 0
			return d, nil
		case doneA || doneB || ea != eb:
			if d.FirstDivergence < 0 {
				d.FirstDivergence = i
				if !doneA {
					e := ea
					d.A = &e
				}
				if !doneB {
					e := eb
					d.B = &e
				}
			}
			// Keep draining both sides for the total counts.
			if doneA {
				for {
					if _, err := rb.Next(); err == io.EOF {
						d.Equal = false
						return d, nil
					} else if err != nil {
						return nil, fmt.Errorf("trace B: %w", err)
					}
					d.EventsB++
				}
			}
			if doneB {
				for {
					if _, err := ra.Next(); err == io.EOF {
						d.Equal = false
						return d, nil
					} else if err != nil {
						return nil, fmt.Errorf("trace A: %w", err)
					}
					d.EventsA++
				}
			}
		}
	}
}

// Report renders the diff for humans: equality verdict, meta
// mismatches, and the first-divergence pair as JSON.
func (d *TraceDiff) Report() string {
	var b strings.Builder
	if d.Equal {
		fmt.Fprintf(&b, "traces EQUAL: %d events\n", d.EventsA)
	} else {
		fmt.Fprintf(&b, "traces DIFFER: %d vs %d events, first divergence at event %d\n",
			d.EventsA, d.EventsB, d.FirstDivergence)
		fmt.Fprintf(&b, "  A: %s\n", renderEvent(d.A))
		fmt.Fprintf(&b, "  B: %s\n", renderEvent(d.B))
	}
	for _, m := range d.MetaDiffs {
		fmt.Fprintf(&b, "  header %s\n", m)
	}
	return b.String()
}

func renderEvent(e *TraceEvent) string {
	if e == nil {
		return "(trace ended)"
	}
	j, err := json.Marshal(e)
	if err != nil {
		return fmt.Sprintf("%+v", *e)
	}
	return string(j)
}
