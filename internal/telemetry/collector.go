package telemetry

import (
	"repro/internal/engine"
	"repro/internal/market"
)

// Labels are the base label values stamped on every series a Collector
// touches: which run of which experiment produced the measurement.
type Labels struct {
	// Service is the hosted service ("lock", "storage").
	Service string
	// Strategy is the bidding strategy name ("Jupiter", "Baseline", ...).
	Strategy string
	// Interval is the bidding interval, e.g. "3h".
	Interval string
	// Scenario is the chaos scenario of the run ("calm", "storm-surge").
	// Optional: when empty, the collector keeps the original three-label
	// schema, so existing consumers see byte-identical series names.
	// Mixing empty and non-empty Scenario on one Registry is a schema
	// conflict (label counts differ) — a tournament sets it on every
	// cell or on none.
	Scenario string
}

// Collector folds the simulation event stream into registry metrics:
// per-zone launches, out-of-bid interruptions and terminations by
// cause, bid and outage distributions, billing totals, decision and
// group-size series, quorum transitions with downtime-interval
// histograms, and model-training counts and wall time split by the
// incremental flag.
//
// The "zone" label carries whatever key the event's Zone field does: a
// bare availability-zone name in single-type runs, a pool key
// (market.PoolKey, "zone/type") for non-base-type pools in
// heterogeneous runs — so per-pool series stay apart without any
// schema change.
//
// A Collector belongs to ONE run: it keeps per-run state (the open
// downtime span, cached metric handles) and its hooks are called
// synchronously by that run's goroutine, so they take no locks. To
// observe a parallel sweep, attach one Collector per cell — they can
// and should share a single Registry, which is concurrency-safe; the
// base Labels keep the cells' series apart.
type Collector struct {
	engine.BaseObserver
	base Labels
	// vals is the base label value tuple — three values, or four when
	// base.Scenario is set.
	vals []string

	events      [engine.KindCount]*Counter
	decisions   *Counter
	groupSize   *Histogram
	transUp     *Counter
	transDown   *Counter
	downtime    *Histogram
	quorumLive  *Gauge
	timeScratch *Histogram
	timeIncr    *Histogram

	// vecs still needing the zone dimension at event time.
	launches     *CounterVec
	bids         *HistogramVec
	outOfBid     *CounterVec
	terminations *CounterVec
	outages      *CounterVec
	outageMins   *HistogramVec
	billing      *CounterVec
	trainings    *CounterVec
	// faults has zone, fault-kind, and phase dimensions; fault events
	// are rare enough that handles are resolved per event, uncached.
	faults *CounterVec

	zones map[string]*zoneHandles

	// downSince is the open quorum-down span's start minute; negative
	// when the service is up.
	downSince int64
}

// zoneHandles caches the per-zone metric handles so the event hot path
// is map-read plus atomic-add, allocation-free after a zone's first
// event.
type zoneHandles struct {
	launchSpot   *Counter
	launchOD     *Counter
	bid          *Histogram
	outOfBid     *Counter
	termProvider *Counter
	termUser     *Counter
	outages      *Counter
	outageMins   *Histogram
	billedSpot   *Counter
	billedOD     *Counter
	trainScratch *Counter
	trainIncr    *Counter
}

const (
	tierSpot     = "spot"
	tierOnDemand = "on-demand"
)

// NewCollector registers the telemetry metric families on reg (a
// no-op when another Collector already did) and returns a collector
// stamping base onto every series.
func NewCollector(reg *Registry, base Labels) *Collector {
	baseLabels := []string{"service", "strategy", "interval"}
	c := &Collector{base: base, zones: make(map[string]*zoneHandles), downSince: -1}
	c.vals = []string{base.Service, base.Strategy, base.Interval}
	if base.Scenario != "" {
		baseLabels = append(baseLabels, "scenario")
		c.vals = append(c.vals, base.Scenario)
	}
	withZone := append(append([]string(nil), baseLabels...), "zone")

	events := reg.Counter("jupiter_events_total",
		"Simulation events by kind.", append(append([]string(nil), baseLabels...), "kind")...)
	for k := engine.Kind(0); k < engine.KindCount; k++ {
		c.events[k] = events.With(c.lv(k.String())...)
	}

	c.launches = reg.Counter("jupiter_instance_launches_total",
		"Instance launches by zone and pricing tier.", append(append([]string(nil), withZone...), "tier")...)
	c.bids = reg.Histogram("jupiter_spot_bid_dollars",
		"Bid prices of spot launches, in dollars.", 0.0001, 10, 3, withZone...)
	c.outOfBid = reg.Counter("jupiter_out_of_bid_total",
		"Out-of-bid interruptions (provider reclaims) by zone.", withZone...)
	c.terminations = reg.Counter("jupiter_terminations_total",
		"Instance terminations by zone and cause.", append(append([]string(nil), withZone...), "cause")...)
	c.outages = reg.Counter("jupiter_outages_total",
		"Hardware/software outages by zone.", withZone...)
	c.outageMins = reg.Histogram("jupiter_outage_minutes",
		"Outage durations, in simulated minutes.", 1, 7*24*60, 3, withZone...)
	c.billing = reg.Counter("jupiter_billing_microusd_total",
		"Closed bills by zone and pricing tier, in integer micro-dollars.",
		append(append([]string(nil), withZone...), "tier")...)

	c.decisions = reg.Counter("jupiter_decisions_total",
		"Bidding decisions made.", baseLabels...).With(c.lv()...)
	c.groupSize = reg.Histogram("jupiter_group_size",
		"Group sizes chosen by bidding decisions.", 1, 100, 6, baseLabels...).
		With(c.lv()...)

	trans := reg.Counter("jupiter_quorum_transitions_total",
		"Service quorum transitions by direction.", append(append([]string(nil), baseLabels...), "direction")...)
	c.transUp = trans.With(c.lv("up")...)
	c.transDown = trans.With(c.lv("down")...)
	c.downtime = reg.Histogram("jupiter_downtime_minutes",
		"Lengths of quorum-down intervals, in simulated minutes.", 1, 100000, 3, baseLabels...).
		With(c.lv()...)
	c.quorumLive = reg.Gauge("jupiter_quorum_live",
		"Live member count at the last quorum transition.", baseLabels...).
		With(c.lv()...)

	c.faults = reg.Counter("jupiter_faults_total",
		"Chaos-layer fault injections and clearances by zone, fault kind, and phase.",
		append(append([]string(nil), withZone...), "fault", "phase")...)

	c.trainings = reg.Counter("jupiter_model_trainings_total",
		"Price-model training passes by zone and mode.", append(append([]string(nil), withZone...), "mode")...)
	times := reg.Histogram("jupiter_model_train_seconds",
		"Wall-clock price-model training time by mode, in seconds.", 1e-6, 100, 2,
		append(append([]string(nil), baseLabels...), "mode")...)
	c.timeScratch = times.With(c.lv("scratch")...)
	c.timeIncr = times.With(c.lv("incremental")...)
	return c
}

// lv returns the base label values extended with extra, freshly
// allocated so handle resolutions never share backing arrays.
func (c *Collector) lv(extra ...string) []string {
	return append(append(make([]string, 0, len(c.vals)+len(extra)), c.vals...), extra...)
}

// zone resolves (building on first sight) the per-zone handles.
func (c *Collector) zone(z string) *zoneHandles {
	if h, ok := c.zones[z]; ok {
		return h
	}
	h := &zoneHandles{
		launchSpot:   c.launches.With(c.lv(z, tierSpot)...),
		launchOD:     c.launches.With(c.lv(z, tierOnDemand)...),
		bid:          c.bids.With(c.lv(z)...),
		outOfBid:     c.outOfBid.With(c.lv(z)...),
		termProvider: c.terminations.With(c.lv(z, "provider")...),
		termUser:     c.terminations.With(c.lv(z, "user")...),
		outages:      c.outages.With(c.lv(z)...),
		outageMins:   c.outageMins.With(c.lv(z)...),
		billedSpot:   c.billing.With(c.lv(z, tierSpot)...),
		billedOD:     c.billing.With(c.lv(z, tierOnDemand)...),
		trainScratch: c.trainings.With(c.lv(z, "scratch")...),
		trainIncr:    c.trainings.With(c.lv(z, "incremental")...),
	}
	c.zones[z] = h
	return h
}

func (c *Collector) count(e engine.Event) {
	if e.Kind >= 0 && e.Kind < engine.KindCount {
		c.events[e.Kind].Inc()
	}
}

// OnInstance folds lifecycle events into the per-zone series.
func (c *Collector) OnInstance(e engine.Event) {
	c.count(e)
	h := c.zone(e.Zone)
	switch e.Kind {
	case engine.KindInstanceLaunched:
		if e.Spot {
			h.launchSpot.Inc()
			h.bid.Observe(e.Amount.Dollars())
		} else {
			h.launchOD.Inc()
		}
	case engine.KindInstanceTerminated:
		if e.Cause == market.TerminatedByProvider {
			h.termProvider.Inc()
		} else {
			h.termUser.Inc()
		}
	case engine.KindOutageStart:
		h.outages.Inc()
		h.outageMins.Observe(float64(e.Until - e.Minute))
	}
}

// OnOutOfBid counts provider reclaims per zone. The event also reaches
// OnInstance, which books the termination cause.
func (c *Collector) OnOutOfBid(e engine.Event) {
	c.zone(e.Zone).outOfBid.Inc()
}

// OnDecision books one decision and its group size. Resize events
// (KindResizeTarget, KindResizeStep) ride the same hook but are
// counted only in the per-kind event counters — folding them into the
// decision count or the group-size distribution would skew both.
func (c *Collector) OnDecision(e engine.Event) {
	c.count(e)
	if e.Kind != engine.KindDecision {
		return
	}
	c.decisions.Inc()
	c.groupSize.Observe(float64(e.Size))
}

// OnBilling accumulates closed bills in micro-dollars.
func (c *Collector) OnBilling(e engine.Event) {
	c.count(e)
	h := c.zone(e.Zone)
	if e.Spot {
		h.billedSpot.Add(int64(e.Amount))
	} else {
		h.billedOD.Add(int64(e.Amount))
	}
}

// OnQuorum tracks up/down transitions and integrates the lengths of
// down intervals.
func (c *Collector) OnQuorum(e engine.Event) {
	c.count(e)
	c.quorumLive.Set(float64(e.Size))
	switch e.Kind {
	case engine.KindQuorumDown:
		c.transDown.Inc()
		if c.downSince < 0 {
			c.downSince = e.Minute
		}
	case engine.KindQuorumUp:
		c.transUp.Inc()
		if c.downSince >= 0 {
			c.downtime.Observe(float64(e.Minute - c.downSince))
			c.downSince = -1
		}
	}
}

// OnModel books training passes and wall time, split by the
// incremental flag.
func (c *Collector) OnModel(e engine.Event) {
	c.count(e)
	h := c.zone(e.Zone)
	seconds := float64(e.DurationNanos) / 1e9
	if e.Size == 1 {
		h.trainIncr.Inc()
		c.timeIncr.Observe(seconds)
	} else {
		h.trainScratch.Inc()
		c.timeScratch.Observe(seconds)
	}
}

// OnFault counts chaos fault injections and clearances. The zone label
// is empty for market-wide faults (a price spike over all zones).
func (c *Collector) OnFault(e engine.Event) {
	c.count(e)
	phase := "injected"
	if e.Kind == engine.KindFaultCleared {
		phase = "cleared"
	}
	c.faults.With(c.lv(e.Zone, e.Fault, phase)...).Inc()
}

// CloseRun finalizes per-run state at the end of accounting: a still
// open quorum-down span is closed at endMinute so its length is not
// lost. Call it once, after the run's last event.
func (c *Collector) CloseRun(endMinute int64) {
	if c.downSince >= 0 {
		c.downtime.Observe(float64(endMinute - c.downSince))
		c.downSince = -1
	}
}
