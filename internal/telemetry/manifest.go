package telemetry

import (
	"encoding/json"
	"io"
	"os"
	"time"
)

// ManifestSchema and ManifestVersion identify the end-of-run summary
// manifest format.
const (
	ManifestSchema  = "jupiter-manifest"
	ManifestVersion = 1
)

// Manifest is the end-of-run summary a CLI emits next to its printed
// report: what ran (command, config, seed), how long it took, and a
// full metric snapshot — enough to archive a run's telemetry, feed a
// perf trajectory, or cross-check a re-run without re-parsing stdout.
type Manifest struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	// Command is the emitting CLI ("replay", "experiments").
	Command string `json:"command"`
	// StartedAt is the wall-clock start in RFC3339.
	StartedAt string `json:"started_at"`
	// WallSeconds is the run's wall-clock duration.
	WallSeconds float64 `json:"wall_seconds"`
	// Seed is the master seed of the run.
	Seed uint64 `json:"seed"`
	// Config records the flag values that shaped the run.
	Config map[string]string `json:"config,omitempty"`
	// Metrics is the registry snapshot at the end of the run.
	Metrics Snapshot `json:"metrics"`
}

// NewManifest stamps a manifest for a run that started at start.
func NewManifest(command string, seed uint64, config map[string]string, start time.Time, reg *Registry) *Manifest {
	return &Manifest{
		Schema:      ManifestSchema,
		Version:     ManifestVersion,
		Command:     command,
		StartedAt:   start.UTC().Format(time.RFC3339),
		WallSeconds: time.Since(start).Seconds(),
		Seed:        seed,
		Config:      config,
		Metrics:     reg.Snapshot(),
	}
}

// Write renders the manifest as indented JSON.
func (m *Manifest) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteFile writes the manifest to a file ("-" means stdout).
func (m *Manifest) WriteFile(path string) error {
	if path == "-" {
		return m.Write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadManifest parses a manifest back in.
func ReadManifest(r io.Reader) (*Manifest, error) {
	var m Manifest
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}
