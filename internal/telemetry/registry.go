// Package telemetry is the observability layer over the simulation
// event stream: a small labeled-metrics registry (counters, gauges,
// log-bucketed histograms), a Collector that folds every engine.Event
// kind into metrics, a versioned JSONL event-trace writer/reader with a
// structural differ, a Prometheus text exposition writer with an
// optional live debug HTTP endpoint, and an end-of-run summary
// manifest.
//
// The layer is strictly pay-for-what-you-use: with no observer
// attached, publishers skip event construction entirely
// (engine.Fanout.Active) and the replay hot path is untouched. With a
// Collector attached, the per-event cost is a few cached-handle map
// reads and atomic adds — no allocation after a zone's handles are
// first built.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// metricKind discriminates the registry's metric families.
type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry holds metric families. It is safe for concurrent use by any
// number of goroutines: registration is idempotent, handle resolution
// takes a short per-family lock, and handle updates are lock-free
// (counters, gauges) or take a per-series mutex (histograms).
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric with a fixed label schema.
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string
	// histogram geometry, histogramKind only
	lo, hi    float64
	perDecade int

	mu     sync.Mutex
	series map[string]*series
}

// series is one labeled time series of a family.
type series struct {
	values []string
	// num is the counter value, or the gauge's float64 bits.
	num atomic.Int64

	// histogram state, guarded by hmu.
	hmu  sync.Mutex
	hist *stats.LogHistogram
}

// seriesKey joins label values with a separator that cannot appear in
// zone names, strategies, or the other label vocabularies we use.
func seriesKey(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	n := len(values) - 1
	for _, v := range values {
		n += len(v)
	}
	b := make([]byte, 0, n)
	for i, v := range values {
		if i > 0 {
			b = append(b, '\xff')
		}
		b = append(b, v...)
	}
	return string(b)
}

func (r *Registry) register(name, help string, kind metricKind, labels []string, lo, hi float64, perDecade int) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("telemetry: metric %q re-registered with a different schema", name))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("telemetry: metric %q re-registered with different labels", name))
			}
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels: append([]string(nil), labels...),
		lo:     lo, hi: hi, perDecade: perDecade,
		series: make(map[string]*series),
	}
	r.families[name] = f
	return f
}

func (f *family) with(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := seriesKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{values: append([]string(nil), values...)}
	if f.kind == histogramKind {
		s.hist = stats.NewLogHistogram(f.lo, f.hi, f.perDecade)
	}
	f.series[key] = s
	return s
}

// CounterVec is a labeled family of monotonically increasing counters.
type CounterVec struct{ fam *family }

// Counter registers (or returns the already-registered) counter family.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.register(name, help, counterKind, labels, 0, 0, 0)}
}

// With resolves the counter handle for one label-value tuple. Resolve
// once and cache the handle on hot paths: the handle's methods are
// lock-free and never allocate.
func (v *CounterVec) With(values ...string) *Counter {
	return &Counter{s: v.fam.with(values)}
}

// Counter is one counter series handle.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.s.num.Add(1) }

// Add adds n; n must not be negative.
func (c *Counter) Add(n int64) { c.s.num.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.s.num.Load() }

// GaugeVec is a labeled family of instantaneous values.
type GaugeVec struct{ fam *family }

// Gauge registers (or returns the already-registered) gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.register(name, help, gaugeKind, labels, 0, 0, 0)}
}

// With resolves the gauge handle for one label-value tuple.
func (v *GaugeVec) With(values ...string) *Gauge {
	return &Gauge{s: v.fam.with(values)}
}

// Gauge is one gauge series handle.
type Gauge struct{ s *series }

// Set stores v.
func (g *Gauge) Set(v float64) { g.s.num.Store(int64(math.Float64bits(v))) }

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(uint64(g.s.num.Load())) }

// HistogramVec is a labeled family of log-bucketed histograms
// (stats.LogHistogram): lo and hi bound the covered range and
// perDecade sets the relative resolution.
type HistogramVec struct{ fam *family }

// Histogram registers (or returns the already-registered) histogram
// family with geometric buckets over [lo, hi].
func (r *Registry) Histogram(name, help string, lo, hi float64, perDecade int, labels ...string) *HistogramVec {
	return &HistogramVec{fam: r.register(name, help, histogramKind, labels, lo, hi, perDecade)}
}

// With resolves the histogram handle for one label-value tuple.
func (v *HistogramVec) With(values ...string) *Histogram {
	return &Histogram{s: v.fam.with(values)}
}

// Histogram is one histogram series handle.
type Histogram struct{ s *series }

// Observe records one observation.
func (h *Histogram) Observe(x float64) {
	h.s.hmu.Lock()
	h.s.hist.Observe(x)
	h.s.hmu.Unlock()
}

// Snapshot is a point-in-time copy of every series in a registry,
// ordered deterministically (families by name, series by label
// values). It feeds both the Prometheus exposition writer and the run
// manifest.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// FamilySnapshot is one metric family's snapshot.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help,omitempty"`
	Kind   string           `json:"kind"`
	Labels []string         `json:"labels,omitempty"`
	Series []SeriesSnapshot `json:"series"`
}

// SeriesSnapshot is one labeled series' snapshot.
type SeriesSnapshot struct {
	LabelValues []string `json:"label_values,omitempty"`
	// Value is the counter or gauge value; unused for histograms.
	Value float64 `json:"value"`
	// Histogram fields.
	Count   int64            `json:"count,omitempty"`
	Sum     float64          `json:"sum,omitempty"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// BucketSnapshot is one cumulative histogram bucket.
type BucketSnapshot struct {
	UpperBound float64 `json:"le"`
	Cumulative int64   `json:"n"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	var snap Snapshot
	for _, f := range fams {
		fs := FamilySnapshot{
			Name: f.name, Help: f.help, Kind: f.kind.String(),
			Labels: f.labels,
		}
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			ss := SeriesSnapshot{LabelValues: s.values}
			switch f.kind {
			case counterKind:
				ss.Value = float64(s.num.Load())
			case gaugeKind:
				ss.Value = math.Float64frombits(uint64(s.num.Load()))
			case histogramKind:
				s.hmu.Lock()
				ss.Count = s.hist.Total()
				ss.Sum = s.hist.Sum()
				// Cumulative buckets: observations under the covered
				// range belong to every bucket; the implicit +Inf
				// bucket is the total and is added at exposition.
				cum := s.hist.Under
				for i, c := range s.hist.Counts {
					cum += c
					ss.Buckets = append(ss.Buckets, BucketSnapshot{
						UpperBound: s.hist.UpperBound(i), Cumulative: cum,
					})
				}
				s.hmu.Unlock()
			}
			fs.Series = append(fs.Series, ss)
		}
		f.mu.Unlock()
		snap.Families = append(snap.Families, fs)
	}
	return snap
}
