package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestDebugServerMetricsAndPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total", "").With().Add(3)
	srv, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "up_total 3") {
		t.Fatalf("/metrics -> %d:\n%s", code, body)
	}
	// Metrics reflect live updates.
	reg.Counter("up_total", "").With().Inc()
	if _, body = get("/metrics"); !strings.Contains(body, "up_total 4") {
		t.Fatalf("/metrics stale:\n%s", body)
	}
	if code, body = get("/debug/pprof/cmdline"); code != http.StatusOK || len(body) == 0 {
		t.Fatalf("/debug/pprof/cmdline -> %d", code)
	}
	if code, _ = get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ -> %d", code)
	}
	if code, body = get("/healthz"); code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz -> %d: %q", code, body)
	}
}

func TestDebugServerGracefulClose(t *testing.T) {
	srv, err := ServeDebug("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	// A request in flight when Close begins must complete: Shutdown
	// drains instead of cutting connections.
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(started)
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("status %d", resp.StatusCode)
			}
		}
		done <- err
	}()
	<-started
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := <-done; err != nil {
		// The request may race the listener closing entirely before it
		// connects; only a cut established connection is a failure.
		if !strings.Contains(err.Error(), "connection refused") {
			t.Fatalf("in-flight request: %v", err)
		}
	}
	// After Close the listener is gone.
	if _, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
		t.Fatalf("listener still accepting after Close")
	}
	// Close is idempotent (Shutdown on a closed server returns ErrServerClosed
	// and falls back to Close, which is a no-op error-wise).
	srv.Close()
}

func TestManifestRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m_total", "").With().Add(11)
	start := time.Now().Add(-2 * time.Second)
	m := NewManifest("replay", 2014, map[string]string{"interval": "3h"}, start, reg)
	if m.Schema != ManifestSchema || m.Version != ManifestVersion {
		t.Fatalf("manifest header = %+v", m)
	}
	if m.WallSeconds < 1.5 {
		t.Fatalf("wall seconds = %g, want >= 1.5", m.WallSeconds)
	}
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 2014 || got.Config["interval"] != "3h" {
		t.Fatalf("round-trip = %+v", got)
	}
	if len(got.Metrics.Families) != 1 || got.Metrics.Families[0].Series[0].Value != 11 {
		t.Fatalf("metric snapshot lost: %+v", got.Metrics)
	}
}
