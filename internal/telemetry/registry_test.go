package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "a counter", "zone").With("us-east-1a")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := reg.Gauge("g", "a gauge").With()
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", g.Value())
	}
	h := reg.Histogram("h", "a histogram", 1, 1000, 1).With()
	h.Observe(5)
	h.Observe(50)
	snap := reg.Snapshot()
	if len(snap.Families) != 3 {
		t.Fatalf("families = %d, want 3", len(snap.Families))
	}
	// Families sorted by name: c_total, g, h.
	hs := snap.Families[2]
	if hs.Name != "h" || hs.Series[0].Count != 2 || hs.Series[0].Sum != 55 {
		t.Fatalf("histogram snapshot = %+v", hs)
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "", "zone")
	b := reg.Counter("x_total", "", "zone")
	a.With("z").Add(3)
	if got := b.With("z").Value(); got != 3 {
		t.Fatalf("re-registered family lost state: %d, want 3", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("schema mismatch did not panic")
		}
	}()
	reg.Gauge("x_total", "", "zone")
}

func TestHandleIdentity(t *testing.T) {
	reg := NewRegistry()
	vec := reg.Counter("y_total", "", "zone")
	vec.With("a").Inc()
	vec.With("a").Inc()
	vec.With("b").Inc()
	if got := vec.With("a").Value(); got != 2 {
		t.Fatalf("series a = %d, want 2", got)
	}
	if got := vec.With("b").Value(); got != 1 {
		t.Fatalf("series b = %d, want 1", got)
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines —
// the shape of a parallel sweep where every cell's collector updates
// shared families — and checks nothing is lost.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	vec := reg.Counter("conc_total", "", "worker")
	hvec := reg.Histogram("conc_hist", "", 1, 1000, 3, "worker")
	const workers, each = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := string(rune('a' + w))
			c := vec.With(name)
			h := hvec.With(name)
			for i := 0; i < each; i++ {
				c.Inc()
				h.Observe(float64(1 + i%100))
			}
		}(w)
	}
	wg.Wait()
	snap := reg.Snapshot()
	for _, f := range snap.Families {
		for _, s := range f.Series {
			switch f.Name {
			case "conc_total":
				if s.Value != each {
					t.Fatalf("series %v = %g, want %d", s.LabelValues, s.Value, each)
				}
			case "conc_hist":
				if s.Count != each {
					t.Fatalf("series %v count = %d, want %d", s.LabelValues, s.Count, each)
				}
			}
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "events seen", "zone", "tier").With("us-east-1a", "spot").Add(7)
	reg.Gauge("b_live", "live nodes").With().Set(3)
	h := reg.Histogram("c_minutes", "down minutes", 1, 100, 1, "svc").With("lock")
	h.Observe(5)
	h.Observe(500) // over range: lands only in +Inf
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE a_total counter",
		`a_total{zone="us-east-1a",tier="spot"} 7`,
		"# TYPE b_live gauge",
		"b_live 3",
		"# TYPE c_minutes histogram",
		`c_minutes_bucket{svc="lock",le="10"} 1`,
		`c_minutes_bucket{svc="lock",le="+Inf"} 2`,
		`c_minutes_sum{svc="lock"} 505`,
		`c_minutes_count{svc="lock"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Deterministic output: a second render is byte-identical.
	var sb2 strings.Builder
	if err := reg.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Error("exposition is not deterministic across renders")
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("esc_total", "", "path").With(`a"b\c` + "\n").Inc()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `esc_total{path="a\"b\\c\n"} 1`) {
		t.Fatalf("bad escaping:\n%s", sb.String())
	}
}
