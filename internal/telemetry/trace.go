package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/engine"
	"repro/internal/market"
)

// TraceSchema and TraceVersion identify the JSONL event-trace format:
// line 1 is a TraceHeader, every further line one TraceEvent. The
// encoding is deterministic — fixed field order, sorted meta keys — so
// two runs with identical inputs write byte-identical files, making
// event traces diffable across runs, binaries, and machines (the
// cross-process version of the in-process TestKernelsAgree pin).
const (
	TraceSchema  = "jupiter-events"
	TraceVersion = 1
)

// TraceHeader is the first line of an event trace.
type TraceHeader struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	// Meta records the run configuration (strategy, seed, interval,
	// ...) for provenance; the differ reports — but tolerates — meta
	// mismatches.
	Meta map[string]string `json:"meta,omitempty"`
}

// TraceEvent is the JSONL form of one engine.Event. Kind and Cause are
// rendered symbolically so traces stay readable and stable across
// renumberings of the in-memory enums.
type TraceEvent struct {
	Minute         int64  `json:"minute"`
	Kind           string `json:"kind"`
	Instance       string `json:"instance,omitempty"`
	Request        string `json:"request,omitempty"`
	Zone           string `json:"zone,omitempty"`
	Spot           bool   `json:"spot,omitempty"`
	Cause          string `json:"cause,omitempty"` // "provider" or "user"; terminations only
	Fault          string `json:"fault,omitempty"` // injector name; chaos fault events only
	AmountMicroUSD int64  `json:"amount_microusd,omitempty"`
	Until          int64  `json:"until,omitempty"`
	Size           int    `json:"size,omitempty"`
	DurationNanos  int64  `json:"duration_nanos,omitempty"`
}

// Record converts an engine event to its trace form.
func Record(e engine.Event) TraceEvent {
	te := TraceEvent{
		Minute:         e.Minute,
		Kind:           e.Kind.String(),
		Instance:       e.Instance,
		Request:        e.Request,
		Zone:           e.Zone,
		Spot:           e.Spot,
		Fault:          e.Fault,
		AmountMicroUSD: int64(e.Amount),
		Until:          e.Until,
		Size:           e.Size,
		DurationNanos:  e.DurationNanos,
	}
	if e.Kind == engine.KindInstanceTerminated {
		if e.Cause == market.TerminatedByProvider {
			te.Cause = "provider"
		} else {
			te.Cause = "user"
		}
	}
	return te
}

// kindsByName inverts Kind.String for the reader.
var kindsByName = func() map[string]engine.Kind {
	m := make(map[string]engine.Kind, int(engine.KindCount))
	for k := engine.Kind(0); k < engine.KindCount; k++ {
		m[k.String()] = k
	}
	return m
}()

// Event converts a trace event back to its engine form.
func (te TraceEvent) Event() (engine.Event, error) {
	k, ok := kindsByName[te.Kind]
	if !ok {
		return engine.Event{}, fmt.Errorf("telemetry: unknown event kind %q", te.Kind)
	}
	e := engine.Event{
		Minute:        te.Minute,
		Kind:          k,
		Instance:      te.Instance,
		Request:       te.Request,
		Zone:          te.Zone,
		Spot:          te.Spot,
		Fault:         te.Fault,
		Amount:        market.Money(te.AmountMicroUSD),
		Until:         te.Until,
		Size:          te.Size,
		DurationNanos: te.DurationNanos,
	}
	switch te.Cause {
	case "", "provider":
		e.Cause = market.TerminatedByProvider
	case "user":
		e.Cause = market.TerminatedByUser
	default:
		return engine.Event{}, fmt.Errorf("telemetry: unknown termination cause %q", te.Cause)
	}
	return e, nil
}

// TraceWriter streams the event stream of a run to JSONL. It
// implements engine.Observer; attach it to replay.Config.Observers (or
// experiments.Env) and Close it when the run ends. The writer is
// mutex-guarded so the cells of a parallel sweep may share one file,
// but only a single-run (or -j 1) trace is byte-reproducible — cell
// interleaving follows the scheduler.
type TraceWriter struct {
	engine.BaseObserver
	mu     sync.Mutex
	w      *bufio.Writer
	closer io.Closer
	err    error
	events int64
}

// NewTraceWriter writes the header and returns a streaming writer. The
// meta map is copied with sorted keys (encoding/json sorts map keys),
// keeping the header deterministic. If w is an io.Closer, Close closes
// it.
func NewTraceWriter(w io.Writer, meta map[string]string) (*TraceWriter, error) {
	tw := &TraceWriter{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		tw.closer = c
	}
	hdr, err := json.Marshal(TraceHeader{Schema: TraceSchema, Version: TraceVersion, Meta: meta})
	if err != nil {
		return nil, err
	}
	hdr = append(hdr, '\n')
	if _, err := tw.w.Write(hdr); err != nil {
		return nil, err
	}
	return tw, nil
}

// write appends one event line; the first write error sticks and is
// returned by Close.
func (tw *TraceWriter) write(e engine.Event) {
	// The trace records simulated history, so wall-clock fields are
	// normalized away: they vary run to run and would break the
	// byte-identity of equal-seed traces. Wall time lives in the
	// Collector's histograms instead.
	e.DurationNanos = 0
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if tw.err != nil {
		return
	}
	line, err := json.Marshal(Record(e))
	if err != nil {
		tw.err = err
		return
	}
	line = append(line, '\n')
	if _, err := tw.w.Write(line); err != nil {
		tw.err = err
		return
	}
	tw.events++
}

// OnInstance records lifecycle events. Out-of-bid reclaims arrive here
// as terminations; the OnOutOfBid double delivery is deliberately not
// recorded twice.
func (tw *TraceWriter) OnInstance(e engine.Event) { tw.write(e) }

// OnDecision records bidding decisions.
func (tw *TraceWriter) OnDecision(e engine.Event) { tw.write(e) }

// OnBilling records billing closures.
func (tw *TraceWriter) OnBilling(e engine.Event) { tw.write(e) }

// OnQuorum records quorum transitions.
func (tw *TraceWriter) OnQuorum(e engine.Event) { tw.write(e) }

// OnModel records model-training events.
func (tw *TraceWriter) OnModel(e engine.Event) { tw.write(e) }

// OnFault records chaos fault injections and clearances.
func (tw *TraceWriter) OnFault(e engine.Event) { tw.write(e) }

// Events returns the number of events written so far.
func (tw *TraceWriter) Events() int64 {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	return tw.events
}

// Close flushes the stream (closing the underlying writer if it is a
// Closer) and returns the first error encountered.
func (tw *TraceWriter) Close() error {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if err := tw.w.Flush(); err != nil && tw.err == nil {
		tw.err = err
	}
	if tw.closer != nil {
		if err := tw.closer.Close(); err != nil && tw.err == nil {
			tw.err = err
		}
		tw.closer = nil
	}
	return tw.err
}

// SortedMeta builds a trace/manifest meta map from alternating
// key-value pairs, mainly a readability helper for callers.
func SortedMeta(kv ...string) map[string]string {
	if len(kv)%2 != 0 {
		panic("telemetry: SortedMeta wants key-value pairs")
	}
	m := make(map[string]string, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		m[kv[i]] = kv[i+1]
	}
	return m
}

// TraceReader streams an event trace back in.
type TraceReader struct {
	header TraceHeader
	sc     *bufio.Scanner
	line   int
}

// OpenTrace validates the header line and returns a reader positioned
// at the first event.
func OpenTrace(r io.Reader) (*TraceReader, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("telemetry: empty trace")
	}
	var hdr TraceHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("telemetry: bad trace header: %w", err)
	}
	if hdr.Schema != TraceSchema {
		return nil, fmt.Errorf("telemetry: not an event trace (schema %q, want %q)", hdr.Schema, TraceSchema)
	}
	if hdr.Version > TraceVersion {
		return nil, fmt.Errorf("telemetry: trace version %d newer than supported %d", hdr.Version, TraceVersion)
	}
	return &TraceReader{header: hdr, sc: sc, line: 1}, nil
}

// Header returns the trace header.
func (tr *TraceReader) Header() TraceHeader { return tr.header }

// Next returns the next event, or io.EOF after the last one.
func (tr *TraceReader) Next() (TraceEvent, error) {
	if !tr.sc.Scan() {
		if err := tr.sc.Err(); err != nil {
			return TraceEvent{}, err
		}
		return TraceEvent{}, io.EOF
	}
	tr.line++
	var te TraceEvent
	if err := json.Unmarshal(tr.sc.Bytes(), &te); err != nil {
		return TraceEvent{}, fmt.Errorf("telemetry: trace line %d: %w", tr.line, err)
	}
	return te, nil
}

// metaDiff lists human-readable header meta differences.
func metaDiff(a, b map[string]string) []string {
	keys := map[string]bool{}
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	var out []string
	for _, k := range sorted {
		av, aok := a[k]
		bv, bok := b[k]
		switch {
		case aok && !bok:
			out = append(out, fmt.Sprintf("meta %q: %q vs (absent)", k, av))
		case !aok && bok:
			out = append(out, fmt.Sprintf("meta %q: (absent) vs %q", k, bv))
		case av != bv:
			out = append(out, fmt.Sprintf("meta %q: %q vs %q", k, av, bv))
		}
	}
	return out
}
