package telemetry

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/market"
)

// scriptedEvents is a small, hand-written run: two spot launches (one
// reclaimed out-of-bid), an on-demand launch, an outage, a quorum
// down/up pair, two billing closures, and two model trainings.
func scriptedEvents() []engine.Event {
	return []engine.Event{
		{Minute: 0, Kind: engine.KindModelTrained, Zone: "us-east-1a", Size: 0, DurationNanos: 2_000_000},
		{Minute: 0, Kind: engine.KindDecision, Size: 3},
		{Minute: 1, Kind: engine.KindInstanceLaunched, Instance: "i-1", Zone: "us-east-1a", Spot: true, Amount: market.FromDollars(0.009)},
		{Minute: 1, Kind: engine.KindInstanceLaunched, Instance: "i-2", Zone: "us-west-2b", Spot: true, Amount: market.FromDollars(0.012)},
		{Minute: 1, Kind: engine.KindInstanceLaunched, Instance: "i-3", Zone: "us-east-1a", Spot: false},
		{Minute: 5, Kind: engine.KindInstanceRunning, Instance: "i-1", Zone: "us-east-1a", Spot: true},
		{Minute: 6, Kind: engine.KindInstanceRunning, Instance: "i-2", Zone: "us-west-2b", Spot: true},
		{Minute: 7, Kind: engine.KindInstanceRunning, Instance: "i-3", Zone: "us-east-1a"},
		{Minute: 40, Kind: engine.KindOutageStart, Instance: "i-3", Zone: "us-east-1a", Until: 70},
		{Minute: 60, Kind: engine.KindInstanceTerminated, Instance: "i-2", Zone: "us-west-2b", Spot: true, Cause: market.TerminatedByProvider},
		{Minute: 60, Kind: engine.KindBillingClose, Instance: "i-2", Zone: "us-west-2b", Spot: true, Amount: market.FromDollars(0.01)},
		{Minute: 60, Kind: engine.KindQuorumDown, Size: 1},
		{Minute: 70, Kind: engine.KindOutageEnd, Instance: "i-3", Zone: "us-east-1a"},
		{Minute: 70, Kind: engine.KindQuorumUp, Size: 2},
		{Minute: 80, Kind: engine.KindModelTrained, Zone: "us-east-1a", Size: 1, DurationNanos: 500_000},
		{Minute: 90, Kind: engine.KindRequestFulfilled, Instance: "i-4", Request: "sir-1", Zone: "us-west-2b", Spot: true},
		{Minute: 95, Kind: engine.KindFaultInjected, Fault: "reclaim-storm", Zone: "us-west-2b", Instance: "i-4"},
		{Minute: 96, Kind: engine.KindFaultCleared, Fault: "zone-blackout", Zone: "us-east-1a", Until: 50},
		{Minute: 99, Kind: engine.KindInstanceTerminated, Instance: "i-1", Zone: "us-east-1a", Spot: true, Cause: market.TerminatedByUser},
		{Minute: 99, Kind: engine.KindBillingClose, Instance: "i-1", Zone: "us-east-1a", Spot: true, Amount: market.FromDollars(0.018)},
	}
}

// TestCollectorGoldenSnapshot replays the scripted sequence through a
// Collector and pins the resulting Prometheus exposition. The golden
// text doubles as documentation of the full metric vocabulary.
func TestCollectorGoldenSnapshot(t *testing.T) {
	reg := NewRegistry()
	c := NewCollector(reg, Labels{Service: "lock", Strategy: "Jupiter", Interval: "3h"})
	f := engine.Fanout{c}
	for _, e := range scriptedEvents() {
		f.Publish(e)
	}
	c.CloseRun(100)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	base := `service="lock",strategy="Jupiter",interval="3h"`
	for _, want := range []string{
		// every kind is counted
		`jupiter_events_total{` + base + `,kind="instance-launched"} 3`,
		`jupiter_events_total{` + base + `,kind="instance-terminated"} 2`,
		`jupiter_events_total{` + base + `,kind="model-trained"} 2`,
		`jupiter_events_total{` + base + `,kind="request-fulfilled"} 1`,
		// launches split by zone and tier; the bid lands in the histogram
		`jupiter_instance_launches_total{` + base + `,zone="us-east-1a",tier="spot"} 1`,
		`jupiter_instance_launches_total{` + base + `,zone="us-east-1a",tier="on-demand"} 1`,
		`jupiter_instance_launches_total{` + base + `,zone="us-west-2b",tier="spot"} 1`,
		`jupiter_spot_bid_dollars_count{` + base + `,zone="us-west-2b"} 1`,
		// the reclaim shows up as interruption AND provider-caused termination
		`jupiter_out_of_bid_total{` + base + `,zone="us-west-2b"} 1`,
		`jupiter_terminations_total{` + base + `,zone="us-west-2b",cause="provider"} 1`,
		`jupiter_terminations_total{` + base + `,zone="us-east-1a",cause="user"} 1`,
		// outage count and duration (30 minutes)
		`jupiter_outages_total{` + base + `,zone="us-east-1a"} 1`,
		`jupiter_outage_minutes_sum{` + base + `,zone="us-east-1a"} 30`,
		// billing totals in micro-dollars: $0.01 and $0.018
		`jupiter_billing_microusd_total{` + base + `,zone="us-west-2b",tier="spot"} 10000`,
		`jupiter_billing_microusd_total{` + base + `,zone="us-east-1a",tier="spot"} 18000`,
		// one decision of size 3
		`jupiter_decisions_total{` + base + `} 1`,
		`jupiter_group_size_sum{` + base + `} 3`,
		// quorum transitions and the 10-minute down interval
		`jupiter_quorum_transitions_total{` + base + `,direction="down"} 1`,
		`jupiter_quorum_transitions_total{` + base + `,direction="up"} 1`,
		`jupiter_downtime_minutes_sum{` + base + `} 10`,
		`jupiter_quorum_live{` + base + `} 2`,
		// chaos faults by zone, fault kind, and phase
		`jupiter_events_total{` + base + `,kind="fault-injected"} 1`,
		`jupiter_events_total{` + base + `,kind="fault-cleared"} 1`,
		`jupiter_faults_total{` + base + `,zone="us-west-2b",fault="reclaim-storm",phase="injected"} 1`,
		`jupiter_faults_total{` + base + `,zone="us-east-1a",fault="zone-blackout",phase="cleared"} 1`,
		// model trainings split by mode, wall time in seconds
		`jupiter_model_trainings_total{` + base + `,zone="us-east-1a",mode="scratch"} 1`,
		`jupiter_model_trainings_total{` + base + `,zone="us-east-1a",mode="incremental"} 1`,
		`jupiter_model_train_seconds_sum{` + base + `,mode="scratch"} 0.002`,
		`jupiter_model_train_seconds_sum{` + base + `,mode="incremental"} 0.0005`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", out)
	}
}

// TestCollectorCloseRunOpenSpan: a run that ends while the service is
// down must still book the final down interval.
func TestCollectorCloseRunOpenSpan(t *testing.T) {
	reg := NewRegistry()
	c := NewCollector(reg, Labels{Service: "lock", Strategy: "Jupiter", Interval: "1h"})
	engine.Dispatch(c, engine.Event{Minute: 10, Kind: engine.KindQuorumDown, Size: 0})
	c.CloseRun(35)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `jupiter_downtime_minutes_sum{service="lock",strategy="Jupiter",interval="1h"} 25`) {
		t.Fatalf("open down span not closed:\n%s", sb.String())
	}
}

// TestCollectorsSharedRegistry runs one collector per "cell" on a
// shared registry from concurrent goroutines — the parallel-sweep
// topology — and checks the cells' series stay separate and complete.
func TestCollectorsSharedRegistry(t *testing.T) {
	reg := NewRegistry()
	intervals := []string{"1h", "3h", "6h", "12h"}
	var wg sync.WaitGroup
	for _, iv := range intervals {
		wg.Add(1)
		go func(iv string) {
			defer wg.Done()
			c := NewCollector(reg, Labels{Service: "lock", Strategy: "Jupiter", Interval: iv})
			f := engine.Fanout{c}
			for i := 0; i < 500; i++ {
				f.Publish(engine.Event{Minute: int64(i), Kind: engine.KindInstanceTerminated,
					Zone: "us-east-1a", Spot: true, Cause: market.TerminatedByProvider})
			}
			c.CloseRun(500)
		}(iv)
	}
	wg.Wait()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, iv := range intervals {
		want := `jupiter_out_of_bid_total{service="lock",strategy="Jupiter",interval="` + iv + `",zone="us-east-1a"} 500`
		if !strings.Contains(sb.String(), want) {
			t.Errorf("missing %q", want)
		}
	}
}

// TestCollectorScenarioLabel pins the Labels.Scenario contract: a
// scenario-stamped collector widens every series schema by one label,
// and mixing stamped and unstamped collectors on one registry is a
// schema conflict caught at construction — a tournament sets Scenario
// on every cell or on none.
func TestCollectorScenarioLabel(t *testing.T) {
	reg := NewRegistry()
	c := NewCollector(reg, Labels{Service: "lock", Strategy: "Jupiter", Interval: "3h", Scenario: "storm-surge"})
	f := engine.Fanout{c}
	f.Publish(engine.Event{Minute: 1, Kind: engine.KindInstanceTerminated,
		Zone: "us-east-1a", Spot: true, Cause: market.TerminatedByProvider})
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `jupiter_out_of_bid_total{service="lock",strategy="Jupiter",interval="3h",scenario="storm-surge",zone="us-east-1a"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("missing scenario-labelled series %q in:\n%s", want, sb.String())
	}

	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("mixing empty and non-empty Scenario on one registry did not panic")
		}
		msg := r.(string)
		if !strings.Contains(msg, "different schema") && !strings.Contains(msg, "different labels") {
			t.Fatalf("panic %q, want a schema/label conflict", msg)
		}
	}()
	NewCollector(reg, Labels{Service: "lock", Strategy: "Jupiter", Interval: "6h"})
}

// TestCollectorHotPathNoAlloc pins the collector's pay-for-what-you-use
// promise: once a zone's handles exist, folding an event into metrics
// allocates nothing.
func TestCollectorHotPathNoAlloc(t *testing.T) {
	reg := NewRegistry()
	c := NewCollector(reg, Labels{Service: "lock", Strategy: "Jupiter", Interval: "3h"})
	f := engine.Fanout{c}
	warm := engine.Event{Minute: 1, Kind: engine.KindInstanceTerminated,
		Zone: "us-east-1a", Spot: true, Cause: market.TerminatedByProvider}
	f.Publish(warm) // builds the zone handles
	allocs := testing.AllocsPerRun(1000, func() {
		f.Publish(warm)
		f.Publish(engine.Event{Minute: 2, Kind: engine.KindBillingClose, Zone: "us-east-1a", Spot: true, Amount: 100})
		f.Publish(engine.Event{Minute: 3, Kind: engine.KindDecision, Size: 5})
	})
	if allocs != 0 {
		t.Errorf("warm event path: %v allocs per publish batch, want 0", allocs)
	}
}
