package telemetry

import (
	"sort"

	"repro/internal/trace"
)

// RecordQuarantinedRows books a lenient trace read's quarantine counts
// on the registry as jupiter_trace_rows_quarantined_total, labeled by
// input source (typically the trace file path) and quarantine reason.
// Nil registry, nil report, or a clean read are no-ops, so callers can
// pass their optional instrumentation straight through. Reasons are
// booked in sorted order, keeping registration order deterministic.
func RecordQuarantinedRows(reg *Registry, source string, rep *trace.ReadReport) {
	if reg == nil || rep == nil || rep.Quarantined == 0 {
		return
	}
	vec := reg.Counter("jupiter_trace_rows_quarantined_total",
		"Input trace rows quarantined by lenient reads, by source and reason.",
		"source", "reason")
	reasons := make([]string, 0, len(rep.Reasons))
	for r := range rep.Reasons {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	for _, r := range reasons {
		vec.With(source, r).Add(int64(rep.Reasons[r]))
	}
}
