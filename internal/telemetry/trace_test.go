package telemetry

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/market"
)

func writeScripted(t *testing.T, meta map[string]string, events []engine.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, meta)
	if err != nil {
		t.Fatal(err)
	}
	f := engine.Fanout{tw}
	for _, e := range events {
		f.Publish(e)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestTraceRoundTrip(t *testing.T) {
	events := scriptedEvents()
	raw := writeScripted(t, map[string]string{"seed": "2014", "strategy": "jupiter"}, events)

	tr, err := OpenTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header().Schema != TraceSchema || tr.Header().Version != TraceVersion {
		t.Fatalf("header = %+v", tr.Header())
	}
	if tr.Header().Meta["seed"] != "2014" {
		t.Fatalf("meta = %v", tr.Header().Meta)
	}
	var got []engine.Event
	for {
		te, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		e, err := te.Event()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, e)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, wrote %d", len(got), len(events))
	}
	for i := range events {
		// The writer normalizes wall-clock fields out of the trace.
		want := events[i]
		want.DurationNanos = 0
		if got[i] != want {
			t.Fatalf("event %d: read %+v, want %+v", i, got[i], want)
		}
	}
}

// TestTraceNormalizesWallClock pins the determinism contract: the only
// wall-clock field on events never reaches the trace.
func TestTraceNormalizesWallClock(t *testing.T) {
	a := writeScripted(t, nil, []engine.Event{
		{Minute: 1, Kind: engine.KindModelTrained, Zone: "z", Size: 1, DurationNanos: 123456},
	})
	b := writeScripted(t, nil, []engine.Event{
		{Minute: 1, Kind: engine.KindModelTrained, Zone: "z", Size: 1, DurationNanos: 654321},
	})
	if !bytes.Equal(a, b) {
		t.Fatal("wall-clock jitter leaked into the trace bytes")
	}
}

// TestTraceDeterministic pins the byte-identity contract: writing the
// same events twice produces identical files.
func TestTraceDeterministic(t *testing.T) {
	meta := map[string]string{"seed": "7", "interval": "3h", "strategy": "jupiter"}
	a := writeScripted(t, meta, scriptedEvents())
	b := writeScripted(t, meta, scriptedEvents())
	if !bytes.Equal(a, b) {
		t.Fatal("same events produced different trace bytes")
	}
}

// TestTraceOutOfBidNotDuplicated: a provider reclaim reaches observers
// through both OnInstance and OnOutOfBid; the trace must record it once.
func TestTraceOutOfBidNotDuplicated(t *testing.T) {
	raw := writeScripted(t, nil, []engine.Event{
		{Minute: 9, Kind: engine.KindInstanceTerminated, Instance: "i-1",
			Zone: "z", Spot: true, Cause: market.TerminatedByProvider},
	})
	if n := bytes.Count(raw, []byte("instance-terminated")); n != 1 {
		t.Fatalf("reclaim recorded %d times, want 1:\n%s", n, raw)
	}
}

func TestOpenTraceRejectsGarbage(t *testing.T) {
	for name, input := range map[string]string{
		"empty":         "",
		"not-json":      "hello\n",
		"wrong-schema":  `{"schema":"something-else","version":1}` + "\n",
		"newer-version": `{"schema":"jupiter-events","version":99}` + "\n",
	} {
		if _, err := OpenTrace(strings.NewReader(input)); err == nil {
			t.Errorf("%s: OpenTrace accepted invalid input", name)
		}
	}
}

func TestDiffEqualTraces(t *testing.T) {
	meta := map[string]string{"seed": "1"}
	a := writeScripted(t, meta, scriptedEvents())
	b := writeScripted(t, meta, scriptedEvents())
	d, err := DiffTraces(bytes.NewReader(a), bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal || d.FirstDivergence != -1 || len(d.MetaDiffs) != 0 {
		t.Fatalf("diff = %+v, want equal", d)
	}
	if !strings.Contains(d.Report(), "EQUAL") {
		t.Fatalf("report = %q", d.Report())
	}
}

func TestDiffDivergentTraces(t *testing.T) {
	events := scriptedEvents()
	a := writeScripted(t, map[string]string{"seed": "1"}, events)
	perturbed := append([]engine.Event(nil), events...)
	perturbed[3].Minute = 2 // first fork at event index 3
	b := writeScripted(t, map[string]string{"seed": "2"}, perturbed)

	d, err := DiffTraces(bytes.NewReader(a), bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if d.Equal {
		t.Fatal("perturbed trace reported equal")
	}
	if d.FirstDivergence != 3 {
		t.Fatalf("first divergence at %d, want 3", d.FirstDivergence)
	}
	if d.A == nil || d.B == nil || d.A.Minute == d.B.Minute {
		t.Fatalf("divergence pair = %+v / %+v", d.A, d.B)
	}
	if d.EventsA != int64(len(events)) || d.EventsB != int64(len(events)) {
		t.Fatalf("counts = %d/%d, want %d", d.EventsA, d.EventsB, len(events))
	}
	if len(d.MetaDiffs) != 1 || !strings.Contains(d.MetaDiffs[0], "seed") {
		t.Fatalf("meta diffs = %v", d.MetaDiffs)
	}
	rep := d.Report()
	for _, want := range []string{"DIFFER", "divergence at event 3", `"seed"`} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

// TestDiffPrefixTrace: one trace truncated mid-run diverges at the
// shorter length, with the ended side reported as nil.
func TestDiffPrefixTrace(t *testing.T) {
	events := scriptedEvents()
	a := writeScripted(t, nil, events)
	b := writeScripted(t, nil, events[:5])
	d, err := DiffTraces(bytes.NewReader(a), bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if d.Equal || d.FirstDivergence != 5 || d.B != nil || d.A == nil {
		t.Fatalf("diff = %+v", d)
	}
	if d.EventsA != int64(len(events)) || d.EventsB != 5 {
		t.Fatalf("counts = %d/%d", d.EventsA, d.EventsB)
	}
	if !strings.Contains(d.Report(), "(trace ended)") {
		t.Fatalf("report = %q", d.Report())
	}
}
