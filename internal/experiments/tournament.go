package experiments

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/chaos"
	"repro/internal/engine"
	"repro/internal/modelcache"
	"repro/internal/provenance"
	"repro/internal/strategy"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TournamentConfig shapes a strategy tournament: every strategy of the
// roster replays under every chaos scenario and every seed, and the
// per-cell results fold into a leaderboard.
type TournamentConfig struct {
	// Specs is the roster as registry specs ("jupiter", "extra(2, 0.2)",
	// ...). Empty means DefaultTournamentSpecs().
	Specs []string
	// Scenarios lists chaos scenarios — builtin names or JSON files,
	// resolved through chaos.Load. Empty means every builtin.
	Scenarios []string
	// Seeds drive trace generation and replay jitter, one full
	// strategy x scenario grid per seed. Empty means
	// DefaultTournamentSeeds.
	Seeds []uint64
	// IntervalHours is the bidding interval (default 3, the chaos
	// suite's interval).
	IntervalHours int64
	// Epsilon is the availability slack below the clean on-demand
	// baseline a strategy may keep and still "meet the bound" — the
	// paper's Eq. 10 guarantee measured the way the chaos suite
	// measures it (default chaosGuaranteeEpsilon).
	Epsilon float64
	// Registry, when set, attaches a telemetry.Collector to every cell
	// with the scenario name as a fourth base label, so the metric
	// snapshot (and any manifest built from it) keys series by
	// service/strategy/interval/scenario.
	Registry *telemetry.Registry
	// SpanSample, when positive, records decision-provenance spans for
	// every cell, tracing every SpanSample-th decision (1 = all), and
	// returns them stamped with the cell coordinates in
	// TournamentResult.Spans — in grid order, so the stream is
	// byte-identical at any Jobs setting.
	SpanSample int
	// Attribute attaches a provenance.Ledger to every cell and returns
	// per-(strategy, scenario) cost/downtime attribution merged across
	// seeds, so leaderboard rows can cite which cause broke each rival.
	Attribute bool
	// Autoscale arms every cell — and the clean on-demand baseline —
	// with a synthetic diurnal+flash-crowd request-rate trace generated
	// per seed (workload.Generate), so the whole arena competes on
	// traffic-driven gradual resizing instead of a fixed group size.
	Autoscale bool
}

// DefaultTournamentSeeds replays three independent markets; the first
// is the seed every other experiment uses.
var DefaultTournamentSeeds = []uint64{2014, 2015, 2016}

// DefaultTournamentEpsilon is the default availability slack under
// fault injection, matching the chaos guarantee suite: decisions land
// only at interval boundaries, so a mid-interval fault can structurally
// cost up to one bidding interval of quorum before the next
// make-before-break repair.
const DefaultTournamentEpsilon = 0.02

// DefaultTournamentSpecs is the shipped arena roster: the Jupiter
// family's main variants, the paper's §5.2 comparisons, and the rival
// strategies from the literature.
func DefaultTournamentSpecs() []string {
	return []string{
		"jupiter",
		"jupiter-adaptive",
		"extra(2, 0.2)",
		"baseline",
		"feedback",
		"portfolio",
		"checkpoint",
	}
}

// TournamentCell is one replay of the grid.
type TournamentCell struct {
	Strategy     string  `json:"strategy"`
	Scenario     string  `json:"scenario"`
	Seed         uint64  `json:"seed"`
	CostDollars  float64 `json:"cost_dollars"`
	Availability float64 `json:"availability"`
	OutOfBid     int     `json:"out_of_bid"`
}

// ScenarioScore aggregates one strategy's cells under one scenario
// across the seed list.
type ScenarioScore struct {
	Scenario         string  `json:"scenario"`
	MeanCostDollars  float64 `json:"mean_cost_dollars"`
	MeanAvailability float64 `json:"mean_availability"`
	// MeetsBound is the availability verdict: mean availability at
	// least the clean baseline's minus epsilon.
	MeetsBound bool `json:"meets_bound"`
	// WorstCause, when the tournament ran with Attribute, names the
	// attribution cause with the most downtime minutes under this
	// scenario ("" when the strategy had none).
	WorstCause string `json:"worst_cause,omitempty"`
}

// TournamentRow is one strategy's leaderboard line.
type TournamentRow struct {
	Rank     int    `json:"rank"`
	Strategy string `json:"strategy"`
	Spec     string `json:"spec"`
	// ScenariosMet counts scenarios whose availability bound held.
	ScenariosMet     int             `json:"scenarios_met"`
	MeanCostDollars  float64         `json:"mean_cost_dollars"`
	MeanAvailability float64         `json:"mean_availability"`
	Scenarios        []ScenarioScore `json:"scenarios"`
	// DominatedOn lists scenarios where Jupiter Pareto-dominates this
	// strategy: no dearer and no less available, strictly better in one.
	DominatedOn []string `json:"dominated_on,omitempty"`
	// BeatsJupiterOn lists scenarios where this strategy meets the
	// bound at strictly lower mean cost than Jupiter.
	BeatsJupiterOn []string `json:"beats_jupiter_on,omitempty"`
}

// TournamentResult is the full outcome: config echo, the availability
// bound, the ranked leaderboard, and the raw cell grid. Marshalling it
// is deterministic — every slice is explicitly ordered and nothing is
// stamped with wall-clock time.
type TournamentResult struct {
	Service       string   `json:"service"`
	IntervalHours int64    `json:"interval_hours"`
	Epsilon       float64  `json:"epsilon"`
	Seeds         []uint64 `json:"seeds"`
	Scenarios     []string `json:"scenarios"`
	// BaselineAvailability is the clean (chaos-free) on-demand
	// baseline's mean availability over the seeds; the bound every
	// scenario score is judged against is this minus Epsilon.
	BaselineAvailability float64          `json:"baseline_availability"`
	Bound                float64          `json:"bound"`
	Rows                 []TournamentRow  `json:"rows"`
	Cells                []TournamentCell `json:"cells"`
	// Attributions, with TournamentConfig.Attribute, carries the
	// per-(strategy, scenario) cost/downtime ledger merged across
	// seeds, in grid order.
	Attributions []StrategyAttribution `json:"attributions,omitempty"`
	// Spans, with TournamentConfig.SpanSample, carries every cell's
	// stamped decision spans in grid order. Excluded from the
	// leaderboard JSON — write them with provenance.WriteSpans.
	Spans []provenance.Span `json:"-"`
}

// StrategyAttribution is one (strategy, scenario) attribution of the
// tournament grid, merged across its seeds.
type StrategyAttribution struct {
	Strategy string `json:"strategy"`
	Scenario string `json:"scenario"`
	provenance.Attribution
}

// JSON renders the leaderboard for machines (leaderboard.json).
func (r *TournamentResult) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Tournament replays every roster strategy under every chaos scenario
// and seed — the strategy arena — and ranks them: most availability
// bounds met first, mean cost as the tiebreaker. The Env's TrainWeeks,
// ReplayWeeks, Jobs, and Models are honoured; its Seed, Chaos, and
// Observe are superseded by the grid coordinates.
func (e Env) Tournament(cfg TournamentConfig) (*TournamentResult, error) {
	specs := cfg.Specs
	if len(specs) == 0 {
		specs = DefaultTournamentSpecs()
	}
	builders, err := strategy.Default.BuildSpecs(specs)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(builders))
	for i, b := range builders {
		names[i] = b().Name()
	}
	scenarioNames := cfg.Scenarios
	if len(scenarioNames) == 0 {
		scenarioNames = chaos.BuiltinNames()
	}
	scenarios := make([]chaos.Scenario, len(scenarioNames))
	for i, s := range scenarioNames {
		sc, err := chaos.Load(s)
		if err != nil {
			return nil, err
		}
		scenarios[i] = sc
	}
	seeds := cfg.Seeds
	if len(seeds) == 0 {
		seeds = DefaultTournamentSeeds
	}
	hours := cfg.IntervalHours
	if hours == 0 {
		hours = 3
	}
	eps := cfg.Epsilon
	if eps == 0 {
		eps = DefaultTournamentEpsilon
	}

	spec := e.applyConstraints(LockSpec())
	if e.Models == nil {
		// One cache for the whole grid: chaos overlays and seeds salt
		// the trace fingerprints, so cells never read each other's
		// models by accident — they only deduplicate identical training.
		e.Models = modelcache.New()
	}

	// Per-seed market histories, generated once and shared read-only by
	// every cell of that seed's grid.
	sets := make(map[uint64]*trace.Set, len(seeds))
	workloads := make(map[uint64]*workload.Trace, len(seeds))
	for _, seed := range seeds {
		se := e
		se.Seed = seed
		set, err := se.Traces(spec.Type)
		if err != nil {
			return nil, err
		}
		sets[seed] = set
		if cfg.Autoscale {
			wl, err := workload.Generate(workload.GenConfig{
				Seed:  seed,
				Start: e.TrainWeeks * Week,
				End:   (e.TrainWeeks + e.ReplayWeeks) * Week,
			})
			if err != nil {
				return nil, err
			}
			workloads[seed] = wl
		}
	}

	// The availability bound: the clean on-demand baseline, per seed,
	// chaos-free — what the paper's Eq. 10 guarantee promises to match.
	var baseAvail float64
	for _, seed := range seeds {
		se := e
		se.Seed = seed
		se.Workload = workloads[seed]
		res, err := se.replayOne(sets[seed], spec, strategy.OnDemand{}, hours)
		if err != nil {
			return nil, fmt.Errorf("experiments: tournament baseline seed %d: %w", seed, err)
		}
		baseAvail += res.Availability
	}
	baseAvail /= float64(len(seeds))
	bound := baseAvail - eps

	// The grid, strategy-major so each strategy's cells are contiguous.
	nS, nC, nK := len(builders), len(scenarios), len(seeds)
	cells := make([]TournamentCell, nS*nC*nK)
	// Provenance state lives in cell-indexed slices: each cell fills
	// only its own slot, and everything is stamped and merged in grid
	// order afterwards, so spans and attributions stay byte-identical
	// at any Jobs setting.
	var recs []*provenance.Recorder
	var leds []*provenance.Ledger
	if cfg.SpanSample > 0 || cfg.Attribute {
		recs = make([]*provenance.Recorder, len(cells))
		leds = make([]*provenance.Ledger, len(cells))
	}
	err = forEachCell(len(cells), e.Jobs, func(i int) error {
		si := i / (nC * nK)
		ci := (i / nK) % nC
		ki := i % nK
		ce := e
		ce.Seed = seeds[ki]
		ce.Chaos = &scenarios[ci]
		ce.Workload = workloads[seeds[ki]]
		if cfg.Registry != nil {
			reg, scenario := cfg.Registry, scenarioNames[ci]
			ce.Observe = func(spec strategy.ServiceSpec, strategyName string, intervalHours int64) []engine.Observer {
				return []engine.Observer{telemetry.NewCollector(reg, telemetry.Labels{
					Service:  "lock",
					Strategy: strategyName,
					Interval: fmt.Sprintf("%dh", intervalHours),
					Scenario: scenario,
				})}
			}
		} else {
			ce.Observe = nil
		}
		if recs != nil {
			// A sample of 0 (Attribute without spans) still records at
			// sample 1: the ledger reads stage spans for quarantine
			// evidence.
			rec := provenance.NewRecorder(cfg.SpanSample)
			led := provenance.NewLedger()
			led.WatchStages(rec)
			recs[i], leds[i] = rec, led
			ce.Spans = func(strategy.ServiceSpec, string, int64) *provenance.Recorder { return rec }
			inner := ce.Observe
			ce.Observe = func(spec strategy.ServiceSpec, strategyName string, intervalHours int64) []engine.Observer {
				var obs []engine.Observer
				if inner != nil {
					obs = inner(spec, strategyName, intervalHours)
				}
				return append(obs, led)
			}
		}
		strat := builders[si]()
		res, err := ce.replayOne(sets[seeds[ki]], spec, strat, hours)
		if err != nil {
			return fmt.Errorf("experiments: tournament %s/%s/seed %d: %w",
				names[si], scenarioNames[ci], seeds[ki], err)
		}
		cells[i] = TournamentCell{
			Strategy:     names[si],
			Scenario:     scenarioNames[ci],
			Seed:         seeds[ki],
			CostDollars:  res.Cost.Dollars(),
			Availability: res.Availability,
			OutOfBid:     res.OutOfBid,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Stamp and concatenate spans, and merge per-(strategy, scenario)
	// attributions across seeds, in grid order.
	var allSpans []provenance.Span
	var attribs []StrategyAttribution
	if recs != nil {
		if cfg.SpanSample > 0 {
			for i, rec := range recs {
				si := i / (nC * nK)
				ci := (i / nK) % nC
				ki := i % nK
				rec.Stamp(provenance.Stamp{
					Strategy: names[si], Scenario: scenarioNames[ci],
					Service: "lock", Interval: fmt.Sprintf("%dh", hours), Seed: seeds[ki],
				})
				allSpans = append(allSpans, rec.Spans()...)
			}
		}
		if cfg.Attribute {
			for si := 0; si < nS; si++ {
				for ci := 0; ci < nC; ci++ {
					var merged provenance.Attribution
					for ki := 0; ki < nK; ki++ {
						merged = merged.Merge(leds[(si*nC+ci)*nK+ki].Attribution())
					}
					attribs = append(attribs, StrategyAttribution{
						Strategy: names[si], Scenario: scenarioNames[ci], Attribution: merged,
					})
				}
			}
		}
	}

	// Fold cells into per-strategy rows.
	rows := make([]TournamentRow, nS)
	for si := 0; si < nS; si++ {
		row := TournamentRow{Strategy: names[si], Spec: specs[si]}
		for ci := 0; ci < nC; ci++ {
			score := ScenarioScore{Scenario: scenarioNames[ci]}
			for ki := 0; ki < nK; ki++ {
				c := cells[(si*nC+ci)*nK+ki]
				score.MeanCostDollars += c.CostDollars
				score.MeanAvailability += c.Availability
			}
			score.MeanCostDollars /= float64(nK)
			score.MeanAvailability /= float64(nK)
			score.MeetsBound = score.MeanAvailability >= bound
			if cfg.Attribute {
				score.WorstCause = attribs[si*nC+ci].WorstCause()
			}
			if score.MeetsBound {
				row.ScenariosMet++
			}
			row.MeanCostDollars += score.MeanCostDollars
			row.MeanAvailability += score.MeanAvailability
			row.Scenarios = append(row.Scenarios, score)
		}
		row.MeanCostDollars /= float64(nC)
		row.MeanAvailability /= float64(nC)
		rows[si] = row
	}

	// Dominance annotations against the Jupiter row, when present.
	if ji := rowIndex(rows, "Jupiter"); ji >= 0 {
		for i := range rows {
			if i == ji {
				continue
			}
			for ci := range rows[i].Scenarios {
				r, j := rows[i].Scenarios[ci], rows[ji].Scenarios[ci]
				if j.MeanCostDollars <= r.MeanCostDollars && j.MeanAvailability >= r.MeanAvailability &&
					(j.MeanCostDollars < r.MeanCostDollars || j.MeanAvailability > r.MeanAvailability) {
					rows[i].DominatedOn = append(rows[i].DominatedOn, r.Scenario)
				}
				if r.MeetsBound && r.MeanCostDollars < j.MeanCostDollars {
					rows[i].BeatsJupiterOn = append(rows[i].BeatsJupiterOn, r.Scenario)
				}
			}
		}
	}

	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].ScenariosMet != rows[j].ScenariosMet {
			return rows[i].ScenariosMet > rows[j].ScenariosMet
		}
		if rows[i].MeanCostDollars != rows[j].MeanCostDollars {
			return rows[i].MeanCostDollars < rows[j].MeanCostDollars
		}
		return rows[i].Strategy < rows[j].Strategy
	})
	for i := range rows {
		rows[i].Rank = i + 1
	}

	return &TournamentResult{
		Service:              "lock",
		IntervalHours:        hours,
		Epsilon:              eps,
		Seeds:                seeds,
		Scenarios:            scenarioNames,
		BaselineAvailability: baseAvail,
		Bound:                bound,
		Rows:                 rows,
		Cells:                cells,
		Attributions:         attribs,
		Spans:                allSpans,
	}, nil
}

// rowIndex finds a leaderboard row by strategy name.
func rowIndex(rows []TournamentRow, name string) int {
	for i, r := range rows {
		if r.Strategy == name {
			return i
		}
	}
	return -1
}

// RenderTournament renders the leaderboard as a text table with
// dominance annotations.
func RenderTournament(r *TournamentResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "strategy arena: %d strategies x %d scenarios x %d seeds, %dh interval\n",
		len(r.Rows), len(r.Scenarios), len(r.Seeds), r.IntervalHours)
	fmt.Fprintf(&b, "availability bound: %.6f (clean baseline %.6f - epsilon %.2f)\n\n",
		r.Bound, r.BaselineAvailability, r.Epsilon)
	fmt.Fprintf(&b, "%-4s %-18s %-10s %13s %13s  %s\n",
		"rank", "strategy", "bound met", "mean cost $", "mean avail", "notes")
	for _, row := range r.Rows {
		note := ""
		switch {
		case len(row.BeatsJupiterOn) > 0:
			note = "beats Jupiter on " + strings.Join(row.BeatsJupiterOn, ", ")
		case len(row.DominatedOn) == len(r.Scenarios) && len(r.Scenarios) > 0:
			note = "dominated by Jupiter everywhere"
		case len(row.DominatedOn) > 0:
			note = "dominated by Jupiter on " + strings.Join(row.DominatedOn, ", ")
		}
		fmt.Fprintf(&b, "%-4d %-18s %6d/%-3d %13.2f %13.6f  %s\n",
			row.Rank, row.Strategy, row.ScenariosMet, len(r.Scenarios),
			row.MeanCostDollars, row.MeanAvailability, note)
	}
	var worst []string
	for _, row := range r.Rows {
		if row.ScenariosMet < len(r.Scenarios) {
			var miss []string
			for _, s := range row.Scenarios {
				if !s.MeetsBound {
					// With attribution on, cite the cause that cost the
					// most downtime under the missed scenario.
					if s.WorstCause != "" {
						miss = append(miss, fmt.Sprintf("%s (worst cause: %s)", s.Scenario, s.WorstCause))
					} else {
						miss = append(miss, s.Scenario)
					}
				}
			}
			worst = append(worst, fmt.Sprintf("%s misses %s", row.Strategy, strings.Join(miss, ", ")))
		}
	}
	if len(worst) > 0 {
		fmt.Fprintf(&b, "\nbound violations: %s\n", strings.Join(worst, "; "))
	}
	return b.String()
}
