package experiments

import (
	"fmt"
	"testing"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/lockservice"
	"repro/internal/market"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// TestFeasibilityEndToEnd is the §5.4 experiment in miniature, closing
// the loop between the bidding layer and the replicated service layer:
// the Jupiter framework bids against the simulated market, and its
// decisions drive a REAL Paxos-replicated lock service over the
// simulated network — out-of-bid terminations crash replicas, interval
// rotations run make-before-break view changes — while lock state must
// stay consistent throughout.
func TestFeasibilityEndToEnd(t *testing.T) {
	env := Env{Seed: 2014, TrainWeeks: 6, ReplayWeeks: 1}
	set, err := env.Traces(market.M1Small)
	if err != nil {
		t.Fatal(err)
	}
	provider := cloud.NewProvider(set, cloud.Config{Seed: env.Seed})
	provider.AdvanceTo(env.TrainWeeks * Week)

	j := core.New()
	spec := LockSpec()
	view := providerView{p: provider}

	// First decision establishes the founding membership.
	decision, err := j.Decide(view, spec, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(decision.Bids) == 0 {
		t.Fatal("Jupiter fell back to on-demand on the first decision")
	}
	replicaOf := func(zone string) simnet.NodeID {
		return simnet.NodeID("replica@" + zone)
	}
	instances := map[string]cloud.InstanceID{}
	var members []simnet.NodeID
	for _, b := range decision.Bids {
		id, err := provider.RequestSpot(b.Zone, spec.Type, b.Price)
		if err != nil {
			t.Fatalf("initial bid %s in %s: %v", b.Price, b.Zone, err)
		}
		instances[b.Zone] = id
		members = append(members, replicaOf(b.Zone))
	}
	snet := simnet.New(env.Seed)
	svc := lockservice.New(snet, members)

	// A client takes a lock that must survive the whole run.
	ok, seq, err := svc.Acquire("durable-client", "/anchor", 0)
	if err != nil || !ok {
		t.Fatalf("anchor acquire: ok=%v err=%v", ok, err)
	}
	if seq == 0 {
		t.Fatal("zero sequencer")
	}

	const intervals = 6
	for interval := 0; interval < intervals; interval++ {
		// Advance the market by one bidding interval; out-of-bid
		// terminations crash the corresponding service replicas.
		target := provider.Now() + 60
		for minute := provider.Now() + 1; minute <= target; minute++ {
			provider.AdvanceTo(minute)
			for zone, id := range instances {
				if !provider.Alive(id) && !snet.Crashed(replicaOf(zone)) {
					inst, _ := provider.Instance(id)
					if inst.State == cloud.Terminated {
						snet.Crash(replicaOf(zone))
					}
				}
			}
		}
		// Bid for the next interval and rotate membership.
		decision, err := j.Decide(view, spec, 60)
		if err != nil {
			t.Fatal(err)
		}
		if len(decision.Bids) == 0 {
			t.Fatal("Jupiter fell back mid-run")
		}
		next := map[string]bool{}
		for _, b := range decision.Bids {
			next[b.Zone] = true
		}
		var add, remove []simnet.NodeID
		for _, b := range decision.Bids {
			if _, have := instances[b.Zone]; !have {
				id, err := provider.RequestSpot(b.Zone, spec.Type, b.Price)
				if err != nil {
					continue // zone skipped this interval
				}
				instances[b.Zone] = id
				add = append(add, replicaOf(b.Zone))
			}
		}
		for zone, id := range instances {
			if !next[zone] {
				_ = provider.Terminate(id)
				remove = append(remove, replicaOf(zone))
				delete(instances, zone)
			}
		}
		if len(add) > 0 || len(remove) > 0 {
			if err := svc.Rotate(add, remove); err != nil {
				t.Fatalf("interval %d rotation: %v", interval, err)
			}
		}
		svc.Cluster().Settle(100000)

		// The service must stay correct: the anchor lock is held, and
		// fresh operations commit.
		if h := svc.Holder("/anchor"); h != "durable-client" {
			t.Fatalf("interval %d: anchor lock lost (holder %q)", interval, h)
		}
		lock := fmt.Sprintf("/interval-%d", interval)
		ok, _, err := svc.Acquire("worker", lock, 0)
		if err != nil || !ok {
			t.Fatalf("interval %d: acquire %s: ok=%v err=%v", interval, lock, ok, err)
		}
		if ok2, _, _ := svc.Acquire("intruder", lock, 0); ok2 {
			t.Fatalf("interval %d: mutual exclusion violated", interval)
		}
	}

	// Finally the anchor releases cleanly.
	released, err := svc.Release("durable-client", "/anchor")
	if err != nil || !released {
		t.Fatalf("final release: ok=%v err=%v", released, err)
	}
}

// providerView adapts the cloud provider to the strategy view (shared
// with cmd/jupiter).
type providerView struct{ p *cloud.Provider }

func (v providerView) Now() int64      { return v.p.Now() }
func (v providerView) Zones() []string { return v.p.Zones() }
func (v providerView) SpotPrice(zone string) (market.Money, error) {
	return v.p.SpotPrice(zone)
}
func (v providerView) SpotPriceAge(zone string) (int64, error) {
	return v.p.SpotPriceAge(zone)
}
func (v providerView) PriceHistory(zone string, from, to int64) (*trace.Trace, error) {
	return v.p.PriceHistory(zone, from, to)
}
