package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/market"
)

// heteroTypes is the 4-type catalog of the heterogeneous acceptance
// sweep: the m1.small base plus three siblings of different shapes.
func heteroTypes() []market.InstanceType {
	return []market.InstanceType{market.M1Medium, market.C3Large, market.R3Large}
}

// TestHeteroSweepNotWorseThanZoneOnly is the pool framework's
// acceptance gate: over the 4-type × 17-zone chaos-free market, the
// capacity-weighted planner must match or beat the zone-only planner —
// availability no lower, cost no higher — at every swept interval.
// The guarantee comes from construction (the zone-only selection stays
// in the candidate race, and a heterogeneous portfolio only displaces
// it when it dominates on both planned and expected cost), and this
// test pins it end to end through the replay.
func TestHeteroSweepNotWorseThanZoneOnly(t *testing.T) {
	spec := LockSpec()
	for _, hours := range []int64{1, 3, 6} {
		ez := QuickEnv()
		setz, err := ez.Traces(spec.Type)
		if err != nil {
			t.Fatal(err)
		}
		rz, err := ez.replayOne(setz, spec, core.New(), hours)
		if err != nil {
			t.Fatal(err)
		}

		eh := QuickEnv()
		eh.Types = heteroTypes()
		seth, err := eh.Traces(spec.Type)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := len(seth.Zones()), 4*len(market.ExperimentZones()); got != want {
			t.Fatalf("heterogeneous market has %d pools, want %d (4 types x 17 zones)", got, want)
		}
		rh, err := eh.replayOne(seth, spec, core.New(), hours)
		if err != nil {
			t.Fatal(err)
		}

		if rh.Cost > rz.Cost {
			t.Errorf("interval %dh: heterogeneous cost %v exceeds zone-only %v", hours, rh.Cost, rz.Cost)
		}
		if rh.Availability < rz.Availability {
			t.Errorf("interval %dh: heterogeneous availability %.6f below zone-only %.6f",
				hours, rh.Availability, rz.Availability)
		}
	}
}

// TestHeteroSweepRunsFullMatrix exercises the full sweep machinery over
// the heterogeneous market: every (strategy, interval) cell completes
// and Jupiter still meets the Equation 10 availability constraint.
func TestHeteroSweepRunsFullMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full heterogeneous sweep is slow")
	}
	env := QuickEnv()
	env.Types = heteroTypes()
	env.Jobs = 4
	rows, err := env.Sweep(LockSpec(), "lock")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(SweepIntervals)*4 {
		t.Fatalf("sweep produced %d rows, want %d", len(rows), len(SweepIntervals)*4)
	}
	target := LockSpec().TargetAvailability()
	for _, r := range rows {
		if strings.HasPrefix(r.Strategy, "Jupiter") && r.Availability < target {
			t.Errorf("%s at %dh: availability %.6f below target %.7f",
				r.Strategy, r.IntervalHours, r.Availability, target)
		}
	}
}

// TestEnvConstraintsPropagate: Env-level shape constraints reach the
// replayed spec and an unsatisfiable one fails the sweep loudly.
func TestEnvConstraintsPropagate(t *testing.T) {
	env := QuickEnv()
	env.MinVCPU = 1024
	spec := env.applyConstraints(LockSpec())
	if spec.MinVCPU != 1024 {
		t.Fatalf("constraint not applied: %+v", spec)
	}
	if spec.Feasible(market.M1Small) {
		t.Fatal("m1.small cannot satisfy 1024 vCPUs")
	}
}
