package experiments

import (
	"strings"
	"testing"

	"repro/internal/market"
)

// quick returns a fast environment: 6 training weeks, 1 replay week.
func quick() Env { return QuickEnv() }

func TestTable1MatchesPaper(t *testing.T) {
	regions := Table1()
	if len(regions) != 9 {
		t.Fatalf("%d regions, want 9", len(regions))
	}
	total := 0
	for _, r := range regions {
		total += len(r.Zones)
	}
	if total != 24 {
		t.Fatalf("%d zones, want 24", total)
	}
	out := RenderTable1()
	for _, want := range []string{"us-east-1", "Virginia", "Sao Paulo"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 rendering missing %q", want)
		}
	}
}

func TestFig1Window(t *testing.T) {
	tr, err := quick().Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if tr.End-tr.Start != 120 {
		t.Fatalf("Fig 1 window %d minutes, want 120", tr.End-tr.Start)
	}
	if tr.Zone != "us-east-1a" || tr.Type != market.M1Small {
		t.Fatalf("Fig 1 source %s/%s", tr.Zone, tr.Type)
	}
	if len(tr.Points) == 0 {
		t.Fatal("Fig 1 window empty")
	}
	out, err := quick().RenderFig1()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "us-east-1a") {
		t.Error("rendering missing zone")
	}
}

func TestFig4EstimatesHold(t *testing.T) {
	rows, err := quick().Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 { // 5 zones x 2 types
		t.Fatalf("%d rows, want 10", len(rows))
	}
	// The paper's result: measured out-of-bid probability is near the
	// 0.01 estimate in most cases, with small exceedances allowed (the
	// paper itself reports two exceptions up to ~0.018).
	bad := 0
	for _, r := range rows {
		if r.Bid <= 0 {
			t.Errorf("%s/%s: no bid", r.Zone, r.Type)
		}
		if r.Measured > 0.05 {
			bad++
			t.Logf("%s/%s measured %.4f", r.Zone, r.Type, r.Measured)
		}
	}
	if bad > 2 {
		t.Fatalf("%d of %d zones exceeded 5x the failure target", bad, len(rows))
	}
}

func TestFig5ShapesHold(t *testing.T) {
	rows, err := quick().Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 2 services x 3 strategies
		t.Fatalf("%d rows, want 6", len(rows))
	}
	cost := map[string]map[string]float64{}
	avail := map[string]map[string]float64{}
	for _, r := range rows {
		if cost[r.Service] == nil {
			cost[r.Service] = map[string]float64{}
			avail[r.Service] = map[string]float64{}
		}
		cost[r.Service][r.Strategy] = r.Cost.Dollars()
		avail[r.Service][r.Strategy] = r.Availability
	}
	for _, svc := range []string{"lock", "storage"} {
		if cost[svc]["Jupiter"] >= cost[svc]["Baseline"]/2 {
			t.Errorf("%s: Jupiter cost %.2f not well below baseline %.2f",
				svc, cost[svc]["Jupiter"], cost[svc]["Baseline"])
		}
		if avail[svc]["Jupiter"] < 0.999 {
			t.Errorf("%s: Jupiter availability %.4f", svc, avail[svc]["Jupiter"])
		}
		// The paper's one-week run: Extra(0,0.1) cost comparable to
		// Jupiter but availability suffers (the storage service
		// "failed in the running").
		if avail[svc]["Extra(0, 0.1)"] > avail[svc]["Jupiter"] {
			t.Errorf("%s: Extra(0,0.1) availability above Jupiter", svc)
		}
	}
}

func TestSweepShapesHold(t *testing.T) {
	env := Env{Seed: 2014, TrainWeeks: 8, ReplayWeeks: 2}
	rows, err := env.Fig6and7()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(SweepIntervals)*4 {
		t.Fatalf("%d rows, want %d", len(rows), len(SweepIntervals)*4)
	}
	get := func(strat string, h int64) SweepRow {
		for _, r := range rows {
			if r.Strategy == strat && r.IntervalHours == h {
				return r
			}
		}
		t.Fatalf("row %s/%dh missing", strat, h)
		return SweepRow{}
	}
	for _, h := range SweepIntervals {
		b := get("Baseline", h)
		j := get("Jupiter", h)
		e0 := get("Extra(0, 0.2)", h)
		e2 := get("Extra(2, 0.2)", h)
		// Cost ordering: everything spot beats on-demand; Extra(2)
		// costs more than Extra(0) (two more instances).
		if j.Cost >= b.Cost {
			t.Errorf("%dh: Jupiter %v >= baseline %v", h, j.Cost, b.Cost)
		}
		if e2.Cost <= e0.Cost {
			t.Errorf("%dh: Extra(2) %v <= Extra(0) %v", h, e2.Cost, e0.Cost)
		}
		// Availability ordering: Jupiter >= Extra(0, 0.2).
		if j.Availability < e0.Availability {
			t.Errorf("%dh: Jupiter availability %v below Extra(0,0.2) %v",
				h, j.Availability, e0.Availability)
		}
	}
	// Extra's availability degrades as intervals grow (§5.5).
	if get("Extra(0, 0.2)", 12).Availability >= get("Extra(0, 0.2)", 1).Availability {
		t.Error("Extra(0,0.2) availability did not degrade with interval")
	}

	h, err := HeadlineFrom(rows, "lock", LockSpec().TargetAvailability())
	if err != nil {
		t.Fatal(err)
	}
	if h.ReductionPercent < 50 {
		t.Errorf("headline reduction %.1f%%, want > 50%%", h.ReductionPercent)
	}
	out := RenderSweep(rows, "lock")
	if !strings.Contains(out, "Jupiter") || !strings.Contains(out, "availability") {
		t.Error("sweep rendering incomplete")
	}
	if RenderHeadline([]Headline{h}) == "" {
		t.Error("headline rendering empty")
	}
}

func TestExample3Numbers(t *testing.T) {
	r, err := quick().Example3()
	if err != nil {
		t.Fatal(err)
	}
	// §3: 0.9999901494 availability, ~25.5 s downtime per month.
	if r.OnDemandAvailability < 0.99999 || r.OnDemandAvailability > 0.999991 {
		t.Errorf("on-demand availability %.10f", r.OnDemandAvailability)
	}
	if r.OnDemandDowntimeSec < 25 || r.OnDemandDowntimeSec > 26 {
		t.Errorf("on-demand downtime %.2f s, want ~25.5", r.OnDemandDowntimeSec)
	}
	// Naive spot-price bidding: far worse (paper: >1500 s downtime).
	if r.NaiveDowntimeSec < 1500 {
		t.Errorf("naive downtime %.0f s, want > 1500 (paper §3)", r.NaiveDowntimeSec)
	}
	out, err := quick().RenderExample3()
	if err != nil || out == "" {
		t.Errorf("rendering: %v", err)
	}
}

func TestHeadlineFromMissingRows(t *testing.T) {
	if _, err := HeadlineFrom(nil, "lock", 0.999); err == nil {
		t.Fatal("empty rows accepted")
	}
}
