package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/market"
	"repro/internal/modelcache"
	"repro/internal/replay"
	"repro/internal/strategy"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// chaosGuaranteeEpsilon is the availability slack the guarantee suite
// grants Jupiter under fault injection: decisions land only at interval
// boundaries, so a mid-interval fault can structurally cost up to one
// bidding interval of quorum (~180 accounted minutes at the quick
// scale, ~0.018 of a week) before the next make-before-break repair.
// The tournament judges its availability bound with the same slack.
const chaosGuaranteeEpsilon = DefaultTournamentEpsilon

// chaosQuickRun replays one quick-scale lock cell (6 train weeks, 1
// replay week, 3h interval) under the given scenario — nil for a plain
// run — streaming the event history as JSONL into the returned buffer.
// Models are deliberately per-run: a shared cache would turn the second
// run's trainings into hits and drop their events from the trace.
func chaosQuickRun(t *testing.T, sc *chaos.Scenario, strat strategy.Strategy, models *modelcache.Cache) ([]byte, *replay.Result) {
	t.Helper()
	e := QuickEnv()
	e.Chaos = sc
	e.Models = models
	var buf bytes.Buffer
	tw, err := telemetry.NewTraceWriter(&buf, telemetry.SortedMeta("suite", "chaos"))
	if err != nil {
		t.Fatal(err)
	}
	e.Observe = func(strategy.ServiceSpec, string, int64) []engine.Observer {
		return []engine.Observer{tw}
	}
	set, err := e.Traces(market.M1Small)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.replayOne(set, LockSpec(), strat, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

// TestChaosTraceByteDeterminism pins the chaos determinism contract:
// a fixed scenario and seed produce a byte-identical JSONL event trace,
// run after run — faults are ordinary scheduled events, not wall-clock
// randomness.
func TestChaosTraceByteDeterminism(t *testing.T) {
	sc := mustBuiltin(t, "reclaim-storm")
	a, resA := chaosQuickRun(t, &sc, core.New(), nil)
	b, resB := chaosQuickRun(t, &sc, core.New(), nil)
	if !bytes.Equal(a, b) {
		t.Fatalf("equal-seed chaos traces differ: %d vs %d bytes", len(a), len(b))
	}
	if resA.Cost != resB.Cost || resA.Availability != resB.Availability {
		t.Fatalf("equal-seed chaos results differ: %+v vs %+v", resA, resB)
	}
	if n := bytes.Count(a, []byte(`"kind":"fault-injected"`)); n == 0 {
		t.Fatal("storm run recorded no fault events")
	}
}

// TestChaosZeroInjectorsMatchesNoChaos: arming the chaos layer with a
// zero-injector scenario must be bit-identical to not arming it at all
// — the layer's mere presence may not perturb a run.
func TestChaosZeroInjectorsMatchesNoChaos(t *testing.T) {
	calm := mustBuiltin(t, "calm")
	armed, resArmed := chaosQuickRun(t, &calm, core.New(), nil)
	plain, resPlain := chaosQuickRun(t, nil, core.New(), nil)
	if !bytes.Equal(armed, plain) {
		t.Fatalf("calm scenario perturbs the run: %d vs %d bytes", len(armed), len(plain))
	}
	if resArmed.Cost != resPlain.Cost || resArmed.Availability != resPlain.Availability {
		t.Fatalf("calm scenario perturbs the result: %+v vs %+v", resArmed, resPlain)
	}
}

// TestChaosGuaranteeSuite is the availability guarantee under fault
// injection: for every shipped scenario, Jupiter (with its staged
// degradation to on-demand) must stay within chaosGuaranteeEpsilon of
// the clean on-demand baseline's availability while remaining cheaper
// than running everything on demand.
func TestChaosGuaranteeSuite(t *testing.T) {
	_, base := chaosQuickRun(t, nil, strategy.OnDemand{}, nil)
	if base.Availability < 0.999 {
		t.Fatalf("on-demand baseline availability %v suspiciously low", base.Availability)
	}
	models := modelcache.New() // price-surge and stale-feed salt the fingerprint, so sharing is safe
	for _, name := range chaos.BuiltinNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			sc := mustBuiltin(t, name)
			_, res := chaosQuickRun(t, &sc, core.New(), models)
			if res.Availability < base.Availability-chaosGuaranteeEpsilon {
				t.Errorf("availability %.6f under %s below baseline %.6f - %.2f",
					res.Availability, name, base.Availability, chaosGuaranteeEpsilon)
			}
			if res.Cost >= base.Cost {
				t.Errorf("cost %v under %s not below all-on-demand %v", res.Cost, name, base.Cost)
			}
		})
	}
}

// TestChaosBreaksNaiveFixedBid pins that the suite is actually harsh:
// the flaky-market scenario (a day of 85% launch loss) must break the
// Extra fixed-margin bidder, which has no on-demand fallback, while
// Jupiter rides it out. If this stops failing Extra, the scenario has
// gone soft and the guarantee suite proves nothing.
func TestChaosBreaksNaiveFixedBid(t *testing.T) {
	sc := mustBuiltin(t, "flaky-market")
	_, extra := chaosQuickRun(t, &sc, strategy.Extra{ExtraNodes: 0, Portion: 0.2}, nil)
	_, jup := chaosQuickRun(t, &sc, core.New(), nil)
	if extra.Availability >= 0.95 {
		t.Errorf("Extra availability %.6f under flaky-market not demonstrably broken (< 0.95)", extra.Availability)
	}
	if jup.Availability < 0.98 {
		t.Errorf("Jupiter availability %.6f under flaky-market below 0.98", jup.Availability)
	}
	if jup.Availability <= extra.Availability {
		t.Errorf("Jupiter (%.6f) not above Extra (%.6f) under flaky-market", jup.Availability, extra.Availability)
	}
}

// resizeWindowTracker collects, from one run's event stream, the
// in-flight resize windows (resize target to settle/abort) and the
// quorum-down spans, so the guarantee suite can compute per-window
// rolling availability.
type resizeWindowTracker struct {
	engine.BaseObserver
	windows   [][2]int64 // [open, close); close = -1 while open
	downSpans [][2]int64
}

func (w *resizeWindowTracker) OnDecision(e engine.Event) {
	switch e.Kind {
	case engine.KindResizeTarget:
		if n := len(w.windows); n == 0 || w.windows[n-1][1] >= 0 {
			w.windows = append(w.windows, [2]int64{e.Minute, -1})
		}
	case engine.KindResizeStep:
		if e.Fault == "settled" || e.Fault == "abort" {
			if n := len(w.windows); n > 0 && w.windows[n-1][1] < 0 {
				w.windows[n-1][1] = e.Minute
			}
		}
	}
}

func (w *resizeWindowTracker) OnQuorum(e engine.Event) {
	switch e.Kind {
	case engine.KindQuorumDown:
		if n := len(w.downSpans); n == 0 || w.downSpans[n-1][1] >= 0 {
			w.downSpans = append(w.downSpans, [2]int64{e.Minute, -1})
		}
	case engine.KindQuorumUp:
		if n := len(w.downSpans); n > 0 && w.downSpans[n-1][1] < 0 {
			w.downSpans[n-1][1] = e.Minute
		}
	}
}

// close truncates open windows and spans at the accounting end.
func (w *resizeWindowTracker) close(end int64) {
	if n := len(w.windows); n > 0 && w.windows[n-1][1] < 0 {
		w.windows[n-1][1] = end
	}
	if n := len(w.downSpans); n > 0 && w.downSpans[n-1][1] < 0 {
		w.downSpans[n-1][1] = end
	}
}

// windowAvailability returns the rolling availability over [from, to).
func (w *resizeWindowTracker) windowAvailability(from, to int64) float64 {
	if to <= from {
		return 1
	}
	var down int64
	for _, s := range w.downSpans {
		lo, hi := s[0], s[1]
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		if hi > lo {
			down += hi - lo
		}
	}
	return 1 - float64(down)/float64(to-from)
}

// cruiseWorkload is a flat request-rate trace sized so the autoscaler
// holds the lock spec's five nodes until a flash-crowd injector
// multiplies the rate.
func cruiseWorkload(t *testing.T, e Env) *workload.Trace {
	t.Helper()
	start := e.TrainWeeks * Week
	end := (e.TrainWeeks + e.ReplayWeeks) * Week
	wl, err := workload.New(start, end, []workload.Point{{Minute: start, RPS: 3000}})
	if err != nil {
		t.Fatal(err)
	}
	return wl
}

// TestChaosFlashCrowdGuarantee is the resize-window availability
// guarantee: under every flash-crowd builtin (crowd alone, and crowd
// compounded with a reclaim storm), on two independent markets,
// Jupiter's rolling availability through EVERY gradual-resize window
// must stay within chaosGuaranteeEpsilon of the all-on-demand
// autoscaled baseline, at lower cost than that baseline — scaling
// through the crowd may not be bought with downtime or with on-demand
// money.
func TestChaosFlashCrowdGuarantee(t *testing.T) {
	for _, name := range []string{"flash-crowd", "flash-crowd+reclaim-storm"} {
		for _, seed := range []uint64{2014, 2015} {
			t.Run(fmt.Sprintf("%s/seed-%d", name, seed), func(t *testing.T) {
				sc := mustBuiltin(t, name)
				e := QuickEnv()
				e.Seed = seed
				wl := cruiseWorkload(t, e)
				end := (e.TrainWeeks + e.ReplayWeeks) * Week

				run := func(sc *chaos.Scenario, strat strategy.Strategy) (*replay.Result, *resizeWindowTracker) {
					re := e
					re.Chaos = sc
					re.Workload = wl
					tr := &resizeWindowTracker{}
					re.Observe = func(strategy.ServiceSpec, string, int64) []engine.Observer {
						return []engine.Observer{tr}
					}
					set, err := re.Traces(market.M1Small)
					if err != nil {
						t.Fatal(err)
					}
					res, err := re.replayOne(set, LockSpec(), strat, 3)
					if err != nil {
						t.Fatal(err)
					}
					tr.close(end)
					return res, tr
				}

				base, _ := run(&sc, strategy.OnDemand{})
				res, tr := run(&sc, core.New())

				if len(tr.windows) == 0 {
					t.Fatal("flash crowd drove no resize window")
				}
				floor := base.Availability - chaosGuaranteeEpsilon
				for _, w := range tr.windows {
					if avail := tr.windowAvailability(w[0], w[1]); avail < floor {
						t.Errorf("rolling availability %.6f through resize window [%d, %d) below baseline %.6f - %.2f",
							avail, w[0], w[1], base.Availability, chaosGuaranteeEpsilon)
					}
				}
				if res.Availability < floor {
					t.Errorf("overall availability %.6f below baseline %.6f - %.2f",
						res.Availability, base.Availability, chaosGuaranteeEpsilon)
				}
				if res.Cost >= base.Cost {
					t.Errorf("cost %v not below all-on-demand autoscaled %v", res.Cost, base.Cost)
				}
			})
		}
	}
}

func mustBuiltin(t *testing.T, name string) chaos.Scenario {
	t.Helper()
	sc, ok := chaos.Builtin(name)
	if !ok {
		t.Fatalf("builtin scenario %q missing", name)
	}
	return sc
}
