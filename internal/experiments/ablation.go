package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/modelcache"
)

// AblationRow compares Jupiter under different failure estimators
// (DESIGN.md §6): the interval forecast (the framework's default), the
// stationary occupancy, and the paper's raw one-step Equation 14.
type AblationRow struct {
	Mode         string
	Cost         market.Money
	Availability float64
	OutOfBid     int
}

// AblationEstimators replays the lock service under each estimator
// mode with a 6-hour interval, where the modes differ most.
func (e Env) AblationEstimators() ([]AblationRow, error) {
	set, err := e.Traces(market.M1Small)
	if err != nil {
		return nil, err
	}
	if e.Models == nil {
		e.Models = modelcache.New()
	}
	modes := []struct {
		name string
		mode core.EstimatorMode
	}{
		{"interval", core.ModeInterval},
		{"stationary", core.ModeStationary},
		{"one-step", core.ModeOneStep},
	}
	var rows []AblationRow
	for _, m := range modes {
		j := core.New()
		j.Mode = m.mode
		res, err := e.replayOne(set, LockSpec(), j, 6)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %s: %w", m.name, err)
		}
		rows = append(rows, AblationRow{
			Mode:         m.name,
			Cost:         res.Cost,
			Availability: res.Availability,
			OutOfBid:     res.OutOfBid,
		})
	}
	return rows, nil
}

// AdaptiveRow compares fixed bidding intervals against the adaptive
// interval extension (paper §5.5 future work).
type AdaptiveRow struct {
	Variant      string
	Cost         market.Money
	Availability float64
	Decisions    int
}

// AblationAdaptiveInterval replays the lock service under fixed 1h, 6h,
// and 12h intervals and under the adaptive chooser.
func (e Env) AblationAdaptiveInterval() ([]AdaptiveRow, error) {
	set, err := e.Traces(market.M1Small)
	if err != nil {
		return nil, err
	}
	if e.Models == nil {
		e.Models = modelcache.New()
	}
	var rows []AdaptiveRow
	for _, hours := range []int64{1, 6, 12} {
		res, err := e.replayOne(set, LockSpec(), core.New(), hours)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AdaptiveRow{
			Variant:      fmt.Sprintf("fixed-%dh", hours),
			Cost:         res.Cost,
			Availability: res.Availability,
			Decisions:    res.Decisions,
		})
	}
	res, err := e.replayOne(set, LockSpec(), core.NewAdaptive(), 6)
	if err != nil {
		return nil, err
	}
	rows = append(rows, AdaptiveRow{
		Variant:      "adaptive",
		Cost:         res.Cost,
		Availability: res.Availability,
		Decisions:    res.Decisions,
	})
	return rows, nil
}

// RefineRow compares the equalized-target Fig. 3 algorithm against the
// heterogeneous-bid refinement descent (an extension beyond the paper).
type RefineRow struct {
	Variant      string
	Cost         market.Money
	Availability float64
	OutOfBid     int
}

// AblationRefinement replays the lock service with and without the
// refinement pass at a 6-hour interval.
func (e Env) AblationRefinement() ([]RefineRow, error) {
	set, err := e.Traces(market.M1Small)
	if err != nil {
		return nil, err
	}
	if e.Models == nil {
		e.Models = modelcache.New()
	}
	variants := []func() *core.Jupiter{
		func() *core.Jupiter { return core.New() },
		func() *core.Jupiter { j := core.New(); j.Refine = true; return j },
	}
	var rows []RefineRow
	for _, mk := range variants {
		j := mk()
		res, err := e.replayOne(set, LockSpec(), j, 6)
		if err != nil {
			return nil, err
		}
		rows = append(rows, RefineRow{
			Variant:      j.Name(),
			Cost:         res.Cost,
			Availability: res.Availability,
			OutOfBid:     res.OutOfBid,
		})
	}
	return rows, nil
}

// RenderRefinement prints the refinement comparison.
func RenderRefinement(rows []RefineRow) string {
	var b strings.Builder
	b.WriteString("Extension: heterogeneous-bid refinement (lock service, 6h interval)\n")
	fmt.Fprintf(&b, "%-16s %-12s %-14s %s\n", "variant", "cost", "availability", "out-of-bid")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %-12s %-14.6f %d\n", r.Variant, r.Cost, r.Availability, r.OutOfBid)
	}
	return b.String()
}

// RenderAdaptive prints the interval ablation table.
func RenderAdaptive(rows []AdaptiveRow) string {
	var b strings.Builder
	b.WriteString("Extension: adaptive bidding interval (lock service)\n")
	fmt.Fprintf(&b, "%-12s %-12s %-14s %s\n", "variant", "cost", "availability", "decisions")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-12s %-14.6f %d\n", r.Variant, r.Cost, r.Availability, r.Decisions)
	}
	return b.String()
}

// RenderAblation prints the estimator ablation table.
func RenderAblation(rows []AblationRow) string {
	var b strings.Builder
	b.WriteString("Ablation: Jupiter failure estimator (lock service, 6h interval)\n")
	fmt.Fprintf(&b, "%-12s %-12s %-14s %s\n", "estimator", "cost", "availability", "out-of-bid")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-12s %-14.6f %d\n", r.Mode, r.Cost, r.Availability, r.OutOfBid)
	}
	return b.String()
}
