package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteSweepCSV emits sweep rows as CSV for external plotting.
func WriteSweepCSV(w io.Writer, rows []SweepRow) error {
	if _, err := fmt.Fprintln(w, "service,strategy,interval_hours,cost_usd,availability,out_of_bid,mean_group_size"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%.4f,%.6f,%d,%.2f\n",
			r.Service, r.Strategy, r.IntervalHours, r.Cost.Dollars(), r.Availability, r.OutOfBid, r.MeanGroupSize); err != nil {
			return err
		}
	}
	return nil
}

// RenderTable1 prints the region catalog in the paper's Table 1 shape.
func RenderTable1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-12s %s\n", "Region", "Location", "Availability Zones")
	for _, r := range Table1() {
		fmt.Fprintf(&b, "%-16s %-12s %d\n", r.Name, r.Location, len(r.Zones))
	}
	return b.String()
}

// RenderFig1 prints the price sample as minute/price rows.
func (e Env) RenderFig1() (string, error) {
	tr, err := e.Fig1()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 1: spot price history, %s %s, 2h window [%d, %d)\n", tr.Zone, tr.Type, tr.Start, tr.End)
	fmt.Fprintf(&b, "%-10s %s\n", "minute", "price")
	for _, p := range tr.Points {
		fmt.Fprintf(&b, "%-10d %s\n", p.Minute, p.Price)
	}
	return b.String(), nil
}

// RenderFig4 prints the micro-benchmark rows.
func (e Env) RenderFig4() (string, error) {
	rows, err := e.Fig4()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Fig 4: measured out-of-bid failure probability under estimated FP = 0.01\n")
	fmt.Fprintf(&b, "%-18s %-10s %-10s %-10s %s\n", "zone", "type", "bid", "target", "measured")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %-10s %-10s %-10.4f %.6f\n", r.Zone, r.Type, r.Bid, r.TargetFP, r.Measured)
	}
	return b.String(), nil
}

// RenderFig5 prints the one-week cost bars.
func (e Env) RenderFig5() (string, error) {
	rows, err := e.Fig5()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Fig 5: one-week spot instance cost per strategy\n")
	fmt.Fprintf(&b, "%-10s %-14s %-12s %s\n", "service", "strategy", "cost", "availability")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-14s %-12s %.6f\n", r.Service, r.Strategy, r.Cost, r.Availability)
	}
	return b.String(), nil
}

// RenderSweep prints the Figures 6–9 matrices for one service: a cost
// table and an availability table, strategies as columns and intervals
// as rows.
func RenderSweep(rows []SweepRow, service string) string {
	strategies := []string{}
	seen := map[string]bool{}
	for _, r := range rows {
		if r.Service == service && !seen[r.Strategy] {
			seen[r.Strategy] = true
			strategies = append(strategies, r.Strategy)
		}
	}
	sort.Strings(strategies)
	cell := func(interval int64, strat string) (SweepRow, bool) {
		for _, r := range rows {
			if r.Service == service && r.IntervalHours == interval && r.Strategy == strat {
				return r, true
			}
		}
		return SweepRow{}, false
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s service: cost ($)\n", service)
	fmt.Fprintf(&b, "%-10s", "interval")
	for _, s := range strategies {
		fmt.Fprintf(&b, " %-14s", s)
	}
	b.WriteString("\n")
	for _, h := range SweepIntervals {
		fmt.Fprintf(&b, "%-10s", fmt.Sprintf("%dh", h))
		for _, s := range strategies {
			if r, ok := cell(h, s); ok {
				fmt.Fprintf(&b, " %-14.2f", r.Cost.Dollars())
			} else {
				fmt.Fprintf(&b, " %-14s", "-")
			}
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%s service: availability\n", service)
	fmt.Fprintf(&b, "%-10s", "interval")
	for _, s := range strategies {
		fmt.Fprintf(&b, " %-14s", s)
	}
	b.WriteString("\n")
	for _, h := range SweepIntervals {
		fmt.Fprintf(&b, "%-10s", fmt.Sprintf("%dh", h))
		for _, s := range strategies {
			if r, ok := cell(h, s); ok {
				fmt.Fprintf(&b, " %-14.6f", r.Availability)
			} else {
				fmt.Fprintf(&b, " %-14s", "-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderHeadline prints the headline cost reductions, including the
// comparison against a reserved-instance baseline (§5.2).
func RenderHeadline(hs []Headline) string {
	var b strings.Builder
	b.WriteString("Headline: Jupiter cost reduction vs on-demand baseline\n")
	fmt.Fprintf(&b, "%-10s %-14s %-14s %-10s %-12s %s\n",
		"service", "baseline", "jupiter", "interval", "reduction", "availability (jup/base)")
	for _, h := range hs {
		fmt.Fprintf(&b, "%-10s %-14s %-14s %-10s %-12s %.6f / %.6f\n",
			h.Service, h.BaselineCost, h.JupiterBestCost,
			fmt.Sprintf("%dh", h.JupiterBestHours),
			fmt.Sprintf("%.2f%%", h.ReductionPercent),
			h.JupiterAvailability, h.BaselineAvailability)
	}
	fmt.Fprintf(&b, "vs reserved instances (%.0f%% discount, inflexible):\n", 100*ReservedDiscount)
	for _, h := range hs {
		fmt.Fprintf(&b, "%-10s reserved %-14s jupiter still %-8s cheaper\n",
			h.Service, h.ReservedCost(), fmt.Sprintf("%.2f%%", h.JupiterVsReservedPercent()))
	}
	return b.String()
}

// RenderExample3 prints the §3 worked-example numbers.
func (e Env) RenderExample3() (string, error) {
	r, err := e.Example3()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("§3 worked example\n")
	fmt.Fprintf(&b, "5-node on-demand availability: %.10f (downtime %.1f s/month)\n",
		r.OnDemandAvailability, r.OnDemandDowntimeSec)
	fmt.Fprintf(&b, "naive spot-price bidding:      %.6f (downtime %.0f s/month)\n",
		r.NaiveAvailability, r.NaiveDowntimeSec)
	return b.String(), nil
}
