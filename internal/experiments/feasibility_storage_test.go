package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/simnet"
	"repro/internal/storage"
)

// TestFeasibilityStorageEndToEnd drives the erasure-coded storage
// service (RS-Paxos, θ(3, n)) with real Jupiter decisions: rotations
// re-encode data onto each new membership and every object must stay
// readable across the whole run.
func TestFeasibilityStorageEndToEnd(t *testing.T) {
	env := Env{Seed: 77, TrainWeeks: 6, ReplayWeeks: 1}
	set, err := env.Traces(market.M3Large)
	if err != nil {
		t.Fatal(err)
	}
	provider := cloud.NewProvider(set, cloud.Config{Seed: env.Seed})
	provider.AdvanceTo(env.TrainWeeks * Week)

	j := core.New()
	spec := StorageSpec()
	view := providerView{p: provider}

	decision, err := j.Decide(view, spec, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(decision.Bids) < spec.DataShards {
		t.Fatalf("only %d bids", len(decision.Bids))
	}
	replicaOf := func(zone string) simnet.NodeID {
		return simnet.NodeID("store@" + zone)
	}
	instances := map[string]cloud.InstanceID{}
	var members []simnet.NodeID
	for _, b := range decision.Bids {
		id, err := provider.RequestSpot(b.Zone, spec.Type, b.Price)
		if err != nil {
			t.Fatalf("initial bid: %v", err)
		}
		instances[b.Zone] = id
		members = append(members, replicaOf(b.Zone))
	}
	snet := simnet.New(env.Seed)
	svc, err := storage.New(snet, members, spec.DataShards)
	if err != nil {
		t.Fatal(err)
	}

	objects := map[string][]byte{}
	for i := 0; i < 3; i++ {
		k := fmt.Sprintf("obj-%d", i)
		v := bytes.Repeat([]byte{byte('A' + i)}, 100+i*37)
		objects[k] = v
		if err := svc.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}

	const intervals = 4
	for interval := 0; interval < intervals; interval++ {
		provider.AdvanceTo(provider.Now() + 60)
		decision, err := j.Decide(view, spec, 60)
		if err != nil {
			t.Fatal(err)
		}
		next := map[string]bool{}
		for _, b := range decision.Bids {
			next[b.Zone] = true
		}
		var add, remove []simnet.NodeID
		for _, b := range decision.Bids {
			if _, have := instances[b.Zone]; !have {
				id, err := provider.RequestSpot(b.Zone, spec.Type, b.Price)
				if err != nil {
					continue
				}
				instances[b.Zone] = id
				add = append(add, replicaOf(b.Zone))
			}
		}
		for zone, id := range instances {
			if !next[zone] {
				_ = provider.Terminate(id)
				remove = append(remove, replicaOf(zone))
				delete(instances, zone)
			}
		}
		if len(add) > 0 || len(remove) > 0 {
			if err := svc.Rotate(add, remove); err != nil {
				t.Fatalf("interval %d rotation: %v", interval, err)
			}
		}
		svc.Cluster().Settle(100000)
		// Every object must remain readable, and new writes commit.
		for k, want := range objects {
			got, found, err := svc.Get(k)
			if err != nil || !found || !bytes.Equal(got, want) {
				t.Fatalf("interval %d: Get(%s): found=%v err=%v", interval, k, found, err)
			}
		}
		nk := fmt.Sprintf("interval-%d", interval)
		nv := []byte(fmt.Sprintf("written at interval %d", interval))
		if err := svc.Put(nk, nv); err != nil {
			t.Fatal(err)
		}
		objects[nk] = nv
	}
}
