package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestWeightedVotingAnalysis(t *testing.T) {
	rep, err := quick().WeightedVotingAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Zones) < 5 {
		t.Fatalf("analysis over %d zones", len(rep.Zones))
	}
	if len(rep.FailureProbabilities) != len(rep.Zones) {
		t.Fatal("probability vector length mismatch")
	}
	for i, fp := range rep.FailureProbabilities {
		if fp < 0 || fp > 0.5 {
			t.Fatalf("zone %s FP %v implausible", rep.Zones[i], fp)
		}
	}
	// Weighted voting is availability-optimal: it can only match or
	// beat simple majority.
	if rep.WeightedAvailability < rep.MajorityAvailability-1e-12 {
		t.Fatalf("weighted %v below majority %v", rep.WeightedAvailability, rep.MajorityAvailability)
	}
	if rep.GapDowntimeSecMonth < -1e-6 {
		t.Fatalf("negative downtime gap %v", rep.GapDowntimeSecMonth)
	}
	// Jupiter's equalized targets keep both rules highly available.
	if rep.MajorityAvailability < 0.999 {
		t.Fatalf("majority availability %v", rep.MajorityAvailability)
	}
	out := RenderWeightedVoting(rep)
	if !strings.Contains(out, "majority availability") {
		t.Fatal("rendering incomplete")
	}
}

func TestWriteSweepCSV(t *testing.T) {
	rows := []SweepRow{
		{Service: "lock", Strategy: "Jupiter", IntervalHours: 6, Availability: 0.9999, OutOfBid: 3, MeanGroupSize: 5.2},
	}
	var buf bytes.Buffer
	if err := WriteSweepCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "service,strategy") || !strings.Contains(out, "lock,Jupiter,6") {
		t.Fatalf("CSV output %q", out)
	}
}

func TestAblationEstimators(t *testing.T) {
	rows, err := quick().AblationEstimators()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d ablation rows", len(rows))
	}
	seen := map[string]AblationRow{}
	for _, r := range rows {
		seen[r.Mode] = r
		if r.Availability < 0.9 {
			t.Errorf("mode %s availability %v", r.Mode, r.Availability)
		}
		if r.Cost <= 0 {
			t.Errorf("mode %s cost %v", r.Mode, r.Cost)
		}
	}
	for _, m := range []string{"interval", "stationary", "one-step"} {
		if _, ok := seen[m]; !ok {
			t.Fatalf("mode %s missing", m)
		}
	}
	if RenderAblation(rows) == "" {
		t.Fatal("empty ablation rendering")
	}
}

func TestAblationAdaptiveInterval(t *testing.T) {
	rows, err := quick().AblationAdaptiveInterval()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d adaptive rows", len(rows))
	}
	var adaptive *AdaptiveRow
	for i := range rows {
		if rows[i].Variant == "adaptive" {
			adaptive = &rows[i]
		}
	}
	if adaptive == nil {
		t.Fatal("adaptive variant missing")
	}
	if adaptive.Availability < 0.99 {
		t.Fatalf("adaptive availability %v", adaptive.Availability)
	}
	if RenderAdaptive(rows) == "" {
		t.Fatal("empty adaptive rendering")
	}
}
