// Package experiments reproduces every table and figure of the paper's
// evaluation (§5) on the synthetic market (see DESIGN.md §3 for the
// experiment index and §4 for the data substitution):
//
//	Table 1   — region/availability-zone catalog
//	Figure 1  — spot price history sample
//	Figure 4  — micro-benchmark: measured out-of-bid failure probability
//	Figure 5  — one-week cost, lock + storage service
//	Figures 6/7 — 11-week lock-service cost and availability vs interval
//	Figures 8/9 — 11-week storage-service cost and availability
//	Headline  — cost reduction percentages (81.23% / 85.32% in-paper)
//	Example §3 — availability arithmetic and naive-bidding downtime
package experiments

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/chaos"
	"repro/internal/engine"
	"repro/internal/market"
	"repro/internal/modelcache"
	"repro/internal/provenance"
	"repro/internal/replay"
	"repro/internal/strategy"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Week is one week of minutes.
const Week = int64(7 * 24 * 60)

// Env fixes the data and scale of an experiment run.
type Env struct {
	// Seed drives trace generation and replay jitter.
	Seed uint64
	// TrainWeeks is the model-training prefix (the paper used ~3
	// months of price history).
	TrainWeeks int64
	// ReplayWeeks is the accounted span (11 in the paper's §5.5).
	ReplayWeeks int64
	// Jobs is the worker-pool width for sweeps: independent
	// (strategy, interval) cells replay concurrently. Zero or one means
	// sequential. Every cell seeds its own provider RNG, so results are
	// identical at any parallelism.
	Jobs int
	// Models is the shared price-model provider. Every replay this Env
	// drives routes model training through it, so cells that request
	// the same (zone, training window) — Jupiter variants at intervals
	// whose retrain boundaries coincide — estimate it once. Nil makes
	// each sweep create its own cache; set it to share across sweeps
	// (the trace fingerprint in the cache key keys different services'
	// histories apart) or to read hit/train counters afterwards.
	Models *modelcache.Cache
	// Chaos, when set, arms every replay cell with this fault-injection
	// scenario (see internal/chaos). All cells share the one scenario
	// and chaos seed, so every strategy faces the identical fault
	// schedule — the comparison the chaos suite is after.
	Chaos *chaos.Scenario
	// ChaosSeed overrides the scenario's seed when non-zero.
	ChaosSeed uint64
	// Types lists additional instance types to bid across, beyond each
	// spec's base type: the market grows one correlated pool per (zone,
	// extra type), and pool-aware strategies bid over the whole
	// portfolio. Empty reproduces the paper's single-type market
	// byte-identically.
	Types []market.InstanceType
	// MinVCPU and MinMemGiB, when non-zero, constrain every replayed
	// spec's feasible instance shapes (strategy.ServiceSpec.MinVCPU /
	// MinMemGiB).
	MinVCPU   int
	MinMemGiB float64
	// TraceSet, when set, replaces the synthetic market: every spec
	// replays over this set — e.g. one loaded from a file — instead of
	// generating one from Seed. Traces validates that the set carries
	// the spec's base type and covers the train+replay span.
	TraceSet *trace.Set
	// Kernel and ShardWorkers select the replay engine of every cell
	// (replay.Config.Kernel / ShardWorkers). The zero value keeps the
	// default event kernel.
	Kernel       replay.Kernel
	ShardWorkers int
	// Workload, when set, arms every replay cell with this request-rate
	// trace (replay.Config.Workload): the cell autoscales the group
	// between interval boundaries instead of holding the spec's fixed
	// size. A flat trace (or nil) reproduces the fixed-size runs
	// byte-identically.
	Workload *workload.Trace
	// Scaler overrides the autoscaler mapping the Workload to group-size
	// targets. Nil uses workload.DefaultAutoscaler for the spec.
	Scaler *workload.Autoscaler
	// Observe, when set, builds the observers of each replay cell: it
	// is called once per cell, before the replay starts, with the
	// cell's coordinates, and its return value receives that cell's
	// event stream. Cells of a parallel sweep run concurrently, so the
	// factory must be safe for concurrent calls and per-run observer
	// state (e.g. telemetry.Collector) must be built fresh per call;
	// shared sinks (a telemetry.Registry, a mutex-guarded
	// telemetry.TraceWriter) may be captured by the closure. Nil means
	// unobserved — the replay hot path skips event construction
	// entirely.
	Observe func(spec strategy.ServiceSpec, strategyName string, intervalHours int64) []engine.Observer
	// Spans, when set, supplies each replay cell's decision-provenance
	// recorder (replay.Config.Spans). Called once per cell like
	// Observe, under the same concurrency rules; a recorder belongs to
	// one run, so the factory must return a fresh (or per-cell) one.
	// Nil leaves decisions untraced.
	Spans func(spec strategy.ServiceSpec, strategyName string, intervalHours int64) *provenance.Recorder
}

// DefaultEnv matches the paper's scale.
func DefaultEnv() Env {
	return Env{Seed: 2014, TrainWeeks: 13, ReplayWeeks: 11}
}

// QuickEnv is a scaled-down environment for benchmarks and smoke runs.
func QuickEnv() Env {
	return Env{Seed: 2014, TrainWeeks: 6, ReplayWeeks: 1}
}

// LockSpec is the distributed lock service deployment (§5.1.1/§5.2):
// five m1.small replicas, majority quorum.
func LockSpec() strategy.ServiceSpec {
	return strategy.ServiceSpec{Type: market.M1Small, BaseNodes: 5, DataShards: 1}
}

// StorageSpec is the erasure-coded storage deployment (§5.1.2/§5.2):
// five m3.large nodes, θ(3,5) RS-Paxos quorum.
func StorageSpec() strategy.ServiceSpec {
	return strategy.ServiceSpec{Type: market.M3Large, BaseNodes: 5, DataShards: 3}
}

// Traces generates (deterministically) the market history for a spec:
// a training prefix of TrainWeeks followed by ReplayWeeks of replayable
// market, across the paper's 17 experiment zones — plus one correlated
// sibling pool per (zone, Env.Types entry) when types are configured.
func (e Env) Traces(it market.InstanceType) (*trace.Set, error) {
	if e.TraceSet != nil {
		if e.TraceSet.Type != it {
			return nil, fmt.Errorf("experiments: trace set holds %s pools, spec needs %s", e.TraceSet.Type, it)
		}
		if need := (e.TrainWeeks + e.ReplayWeeks) * Week; e.TraceSet.Start > 0 || e.TraceSet.End < need {
			return nil, fmt.Errorf("experiments: trace set spans [%d, %d), need [0, %d)",
				e.TraceSet.Start, e.TraceSet.End, need)
		}
		return e.TraceSet, nil
	}
	return trace.Generate(trace.GenConfig{
		Seed:  e.Seed,
		Type:  it,
		Types: e.Types,
		Zones: market.ExperimentZones(),
		Start: 0,
		End:   (e.TrainWeeks + e.ReplayWeeks) * Week,
	})
}

// applyConstraints stamps the Env's fleet-wide shape constraints onto a
// spec.
func (e Env) applyConstraints(spec strategy.ServiceSpec) strategy.ServiceSpec {
	if e.MinVCPU > 0 {
		spec.MinVCPU = e.MinVCPU
	}
	if e.MinMemGiB > 0 {
		spec.MinMemGiB = e.MinMemGiB
	}
	return spec
}

// replayOne runs a single strategy/interval combination.
func (e Env) replayOne(set *trace.Set, spec strategy.ServiceSpec, strat strategy.Strategy, intervalHours int64) (*replay.Result, error) {
	var observers []engine.Observer
	if e.Observe != nil {
		observers = e.Observe(spec, strat.Name(), intervalHours)
	}
	var spans *provenance.Recorder
	if e.Spans != nil {
		spans = e.Spans(spec, strat.Name(), intervalHours)
	}
	res, err := replay.Run(replay.Config{
		Traces:                 set,
		Start:                  e.TrainWeeks * Week,
		Spec:                   spec,
		Strategy:               strat,
		IntervalMinutes:        intervalHours * 60,
		Seed:                   e.Seed ^ uint64(intervalHours)<<32 ^ uint64(len(strat.Name())),
		InjectHardwareFailures: true,
		Kernel:                 e.Kernel,
		ShardWorkers:           e.ShardWorkers,
		Models:                 e.Models,
		Observers:              observers,
		Chaos:                  e.Chaos,
		ChaosSeed:              e.ChaosSeed,
		Spans:                  spans,
		Workload:               e.Workload,
		Scaler:                 e.Scaler,
	})
	if err == nil {
		// Per-run observers (telemetry.Collector) finalize open state —
		// e.g. a quorum-down span still open at the end of accounting.
		for _, o := range observers {
			if c, ok := o.(interface{ CloseRun(endMinute int64) }); ok {
				c.CloseRun(e.TrainWeeks*Week + res.TotalMinutes)
			}
		}
	}
	return res, err
}

// SweepRow is one cell of the Figures 6–9 matrices.
type SweepRow struct {
	Service       string
	Strategy      string
	IntervalHours int64
	Cost          market.Money
	Availability  float64
	OutOfBid      int
	MeanGroupSize float64
}

// SweepIntervals are the bidding intervals of §5.5.
var SweepIntervals = []int64{1, 3, 6, 9, 12}

// sweepSpecs is the §5.5 roster as registry specs, in the paper's
// figure order. The specs resolve against strategy.Default — core's
// Jupiter registration rides in on this package's core import — so the
// sweep roster is the same construction path as any user-supplied
// strategy list.
var sweepSpecs = []string{"jupiter", "extra(0, 0.2)", "extra(2, 0.2)", "baseline"}

// sweepStrategies builds the §5.5 strategy roster from the registry.
// Each builder constructs a fresh instance per run so model caches and
// controller state never leak across runs.
func sweepStrategies() []func() strategy.Strategy {
	builders, err := strategy.Default.BuildSpecs(sweepSpecs)
	if err != nil {
		// The roster is fixed at compile time; a resolution failure is a
		// programming error (e.g. core's registration import dropped).
		panic(err)
	}
	out := make([]func() strategy.Strategy, len(builders))
	for i, b := range builders {
		out[i] = b
	}
	return out
}

// runCell invokes one cell, converting a panic into an error carrying
// the cell index and stack. Isolation matters most for the worker pool:
// an unrecovered panic in one cell would tear down the whole process
// mid-sweep; recovered, the bad cell reports like any failed one and
// every other cell still finishes.
func runCell(i int, fn func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("experiments: cell %d panicked: %v\n%s", i, r, debug.Stack())
		}
	}()
	return fn(i)
}

// forEachCell runs fn for every index in [0, n) on a pool of jobs
// workers. Output slots are indexed, and the first error by index wins
// regardless of completion order, so a parallel run returns exactly
// what the sequential one would.
func forEachCell(n, jobs int, fn func(i int) error) error {
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			if err := runCell(i, fn); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				errs[i] = runCell(i, fn)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Sweep reproduces one service's cost/availability matrices (Figures
// 6/7 for the lock service, 8/9 for storage). Cells — one replay per
// (interval, strategy) pair — are independent: each builds its own
// strategy and provider over the shared read-only trace set, so with
// Env.Jobs > 1 they run concurrently and still produce the rows of the
// sequential interval-major order.
func (e Env) Sweep(spec strategy.ServiceSpec, serviceName string) ([]SweepRow, error) {
	spec = e.applyConstraints(spec)
	set, err := e.Traces(spec.Type)
	if err != nil {
		return nil, err
	}
	if e.Models == nil {
		// One provider across every cell of this sweep: all Env.Jobs
		// workers share it, so coinciding retrains train once.
		e.Models = modelcache.New()
	}
	type cell struct {
		hours int64
		mk    func() strategy.Strategy
	}
	var cells []cell
	for _, hours := range SweepIntervals {
		for _, mk := range sweepStrategies() {
			cells = append(cells, cell{hours: hours, mk: mk})
		}
	}
	rows := make([]SweepRow, len(cells))
	err = forEachCell(len(cells), e.Jobs, func(i int) error {
		strat := cells[i].mk()
		res, err := e.replayOne(set, spec, strat, cells[i].hours)
		if err != nil {
			return fmt.Errorf("experiments: %s/%s/%dh: %w", serviceName, strat.Name(), cells[i].hours, err)
		}
		rows[i] = SweepRow{
			Service:       serviceName,
			Strategy:      strat.Name(),
			IntervalHours: cells[i].hours,
			Cost:          res.Cost,
			Availability:  res.Availability,
			OutOfBid:      res.OutOfBid,
			MeanGroupSize: res.MeanGroupSize,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Fig6and7 reproduces the lock-service sweep.
func (e Env) Fig6and7() ([]SweepRow, error) {
	return e.Sweep(LockSpec(), "lock")
}

// Fig8and9 reproduces the storage-service sweep.
func (e Env) Fig8and9() ([]SweepRow, error) {
	return e.Sweep(StorageSpec(), "storage")
}

// Headline summarizes the paper's headline claim from sweep rows: the
// best-interval Jupiter cost versus the baseline.
type Headline struct {
	Service          string
	BaselineCost     market.Money
	JupiterBestCost  market.Money
	JupiterBestHours int64
	ReductionPercent float64
	// AvailabilityKept is true when Jupiter's availability at the best
	// interval is within epsilon of the baseline's.
	JupiterAvailability  float64
	BaselineAvailability float64
}

// HeadlineFrom extracts the headline for one service from sweep rows:
// the cheapest Jupiter interval whose measured availability still meets
// the service's target (the paper's Equation 10 constraint), against
// the baseline cost. If no interval meets the target exactly, the
// highest-availability interval is reported instead.
func HeadlineFrom(rows []SweepRow, service string, targetAvailability float64) (Headline, error) {
	h := Headline{Service: service}
	var haveBase, haveJup bool
	bestAvail := -1.0
	for _, r := range rows {
		if r.Service != service {
			continue
		}
		switch r.Strategy {
		case "Baseline":
			if !haveBase || r.Cost > h.BaselineCost {
				h.BaselineCost = r.Cost
				h.BaselineAvailability = r.Availability
				haveBase = true
			}
		case "Jupiter":
			meets := r.Availability >= targetAvailability
			curMeets := haveJup && h.JupiterAvailability >= targetAvailability
			better := false
			switch {
			case !haveJup:
				better = true
			case meets && !curMeets:
				better = true
			case meets == curMeets && meets && r.Cost < h.JupiterBestCost:
				better = true
			case !meets && !curMeets && r.Availability > bestAvail:
				better = true
			}
			if better {
				h.JupiterBestCost = r.Cost
				h.JupiterBestHours = r.IntervalHours
				h.JupiterAvailability = r.Availability
				bestAvail = r.Availability
				haveJup = true
			}
		}
	}
	if !haveBase || !haveJup {
		return h, fmt.Errorf("experiments: sweep rows missing baseline or Jupiter for %s", service)
	}
	h.ReductionPercent = 100 * (1 - h.JupiterBestCost.Dollars()/h.BaselineCost.Dollars())
	return h, nil
}

// ReservedDiscount is the paper's §5.2 note: "using reserved instances
// can reduce 30%–40% cost at most, but it is inflexible". The midpoint
// models a reserved-instance baseline for comparison.
const ReservedDiscount = 0.35

// ReservedCost estimates what the baseline deployment would cost on
// reserved instances.
func (h Headline) ReservedCost() market.Money {
	return h.BaselineCost.Scale(1 - ReservedDiscount)
}

// JupiterVsReservedPercent is Jupiter's cost reduction measured against
// the reserved-instance baseline instead of on-demand — Jupiter must
// still win for the paper's argument to carry.
func (h Headline) JupiterVsReservedPercent() float64 {
	return 100 * (1 - h.JupiterBestCost.Dollars()/h.ReservedCost().Dollars())
}
