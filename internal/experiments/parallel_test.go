package experiments

import (
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/modelcache"
)

// TestSweepParallelMatchesSequential is the determinism regression test
// for the worker-pool runner: the same Env swept sequentially and at
// Jobs >= 4 must produce identical rows in identical order, because
// every cell seeds its own provider and shares only the read-only trace
// set. Run under -race this also exercises the pool for data races.
func TestSweepParallelMatchesSequential(t *testing.T) {
	seq := QuickEnv()
	seq.Jobs = 1
	par := QuickEnv()
	par.Jobs = 6

	a, err := seq.Sweep(LockSpec(), "lock")
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.Sweep(LockSpec(), "lock")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("parallel sweep diverges from sequential:\nseq: %+v\npar: %+v", a, b)
	}
	if len(a) != len(SweepIntervals)*4 {
		t.Fatalf("sweep produced %d rows, want %d", len(a), len(SweepIntervals)*4)
	}
}

// TestSweepSharedCacheAcrossWorkers drives a parallel sweep through one
// explicit shared model cache and checks that sharing actually happened:
// the sweep's Jupiter cells at intervals dividing the weekly retrain
// cadence request identical (zone, window) models, so the cache must
// report hits, and the rows must still match an uncached sequential
// sweep exactly. Run under -race this is the shared-provider
// concurrency regression test.
func TestSweepSharedCacheAcrossWorkers(t *testing.T) {
	cached := QuickEnv()
	cached.Jobs = 6
	cached.Models = modelcache.New()

	plain := QuickEnv()
	plain.Jobs = 1

	a, err := cached.Sweep(LockSpec(), "lock")
	if err != nil {
		t.Fatal(err)
	}
	b, err := plain.Sweep(LockSpec(), "lock")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("shared-cache sweep diverges from per-sweep-cache sequential:\ncached: %+v\nplain:  %+v", a, b)
	}

	s := cached.Models.Stats()
	if s.Misses == 0 {
		t.Fatal("shared cache trained nothing")
	}
	if s.Hits == 0 {
		t.Fatalf("shared cache saw no hits across sweep cells: %+v", s)
	}
	if s.ScratchTrains+s.IncrementalTrains != s.Misses {
		t.Fatalf("trains (%d scratch + %d incremental) != misses (%d)",
			s.ScratchTrains, s.IncrementalTrains, s.Misses)
	}
}

func TestForEachCellPreservesOrderAndErrors(t *testing.T) {
	for _, jobs := range []int{1, 3, 16} {
		out := make([]int, 50)
		if err := forEachCell(len(out), jobs, func(i int) error {
			out[i] = i * i
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("jobs=%d: slot %d = %d, want %d", jobs, i, v, i*i)
			}
		}
	}

	// The FIRST error by index wins, regardless of which worker finishes
	// first — parallel failures must look like sequential ones.
	sentinel3 := errors.New("cell 3")
	sentinel7 := errors.New("cell 7")
	err := forEachCell(10, 4, func(i int) error {
		switch i {
		case 3:
			return sentinel3
		case 7:
			return sentinel7
		}
		return nil
	})
	if !errors.Is(err, sentinel3) {
		t.Fatalf("got %v, want first-by-index error %v", err, sentinel3)
	}

	// Zero cells and jobs beyond n are fine.
	var calls atomic.Int64
	if err := forEachCell(0, 8, func(int) error { calls.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := forEachCell(2, 100, func(int) error { calls.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("ran %d cells, want 2", calls.Load())
	}
}

// TestForEachCellIsolatesPanics pins that one panicking cell surfaces
// as an error naming the cell — with a stack — while every other cell
// of the pool still runs to completion.
func TestForEachCellIsolatesPanics(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		var ran [8]atomic.Bool
		err := forEachCell(len(ran), jobs, func(i int) error {
			if i == 2 {
				panic("boom at cell 2")
			}
			ran[i].Store(true)
			return nil
		})
		if err == nil {
			t.Fatalf("jobs=%d: panic swallowed", jobs)
		}
		msg := err.Error()
		if !strings.Contains(msg, "cell 2 panicked") || !strings.Contains(msg, "boom at cell 2") {
			t.Fatalf("jobs=%d: error lacks cell identity: %v", jobs, err)
		}
		if !strings.Contains(msg, "forEachCell") && !strings.Contains(msg, "goroutine") {
			t.Fatalf("jobs=%d: error lacks a stack trace: %v", jobs, err)
		}
		if jobs > 1 {
			// The worker pool finishes the remaining cells.
			for i := range ran {
				if i != 2 && !ran[i].Load() {
					t.Fatalf("jobs=%d: cell %d never ran after the panic", jobs, i)
				}
			}
		}
	}
}
