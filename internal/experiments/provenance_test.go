package experiments

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/market"
	"repro/internal/modelcache"
	"repro/internal/provenance"
	"repro/internal/strategy"
	"repro/internal/telemetry"
)

// seriesSum adds up every sample of one metric family in a Prometheus
// exposition — the family's mass regardless of how many label
// combinations it split into.
func seriesSum(t *testing.T, exposition, family string) float64 {
	t.Helper()
	var sum float64
	found := false
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, family+"{") && !strings.HasPrefix(line, family+" ") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		sum += v
		found = true
	}
	if !found {
		t.Fatalf("metric family %q absent from exposition", family)
	}
	return sum
}

// TestLedgerReconciliation is the attribution ledger's accounting
// invariant, checked against every shipped chaos scenario on two
// independent markets: the (pool, cause) cost cells sum bit-exactly to
// the run's billed total (replay.Result.Cost AND the Collector's
// billing counter mass), and the attributed downtime minutes sum to
// the run's downtime (replay.Result.DownMinutes AND the Collector's
// downtime histogram mass). Every billed cent and every down minute
// lands in exactly one cell — nothing double-counted, nothing dropped.
func TestLedgerReconciliation(t *testing.T) {
	models := modelcache.New() // scenarios and seeds salt the trace fingerprint, so sharing is safe
	for _, name := range chaos.BuiltinNames() {
		for _, seed := range []uint64{2014, 2015} {
			t.Run(fmt.Sprintf("%s/seed-%d", name, seed), func(t *testing.T) {
				sc := mustBuiltin(t, name)
				e := QuickEnv()
				e.Seed = seed
				e.Chaos = &sc
				e.Models = models
				// Arm a flat workload so the flash-crowd scenarios drive
				// gradual resizes and the ledger's startup/resize causes
				// are exercised under every scenario.
				e.Workload = cruiseWorkload(t, e)

				reg := telemetry.NewRegistry()
				rec := provenance.NewRecorder(1)
				led := provenance.NewLedger()
				led.WatchStages(rec)
				scenario := name
				e.Observe = func(spec strategy.ServiceSpec, strategyName string, intervalHours int64) []engine.Observer {
					return []engine.Observer{
						telemetry.NewCollector(reg, telemetry.Labels{
							Service:  "lock",
							Strategy: strategyName,
							Interval: fmt.Sprintf("%dh", intervalHours),
							Scenario: scenario,
						}),
						led,
					}
				}
				e.Spans = func(strategy.ServiceSpec, string, int64) *provenance.Recorder { return rec }

				set, err := e.Traces(market.M1Small)
				if err != nil {
					t.Fatal(err)
				}
				res, err := e.replayOne(set, LockSpec(), core.New(), 3)
				if err != nil {
					t.Fatal(err)
				}

				a := led.Attribution()
				var cellCost, cellDown int64
				for _, c := range a.Cells {
					cellCost += c.CostMicroUSD
					cellDown += c.DownMinutes
				}
				if cellCost != a.TotalCostMicroUSD || cellDown != a.TotalDownMinutes {
					t.Fatalf("cells sum to %d µ$ / %d min, totals say %d / %d",
						cellCost, cellDown, a.TotalCostMicroUSD, a.TotalDownMinutes)
				}
				if a.TotalCostMicroUSD != int64(res.Cost) {
					t.Errorf("attributed cost %d µ$ != run bill %d µ$", a.TotalCostMicroUSD, int64(res.Cost))
				}
				if a.TotalDownMinutes != res.DownMinutes {
					t.Errorf("attributed downtime %d min != run downtime %d min", a.TotalDownMinutes, res.DownMinutes)
				}

				var sb strings.Builder
				if err := reg.WritePrometheus(&sb); err != nil {
					t.Fatal(err)
				}
				if billed := seriesSum(t, sb.String(), "jupiter_billing_microusd_total"); int64(billed) != a.TotalCostMicroUSD {
					t.Errorf("billing counter mass %v µ$ != attributed cost %d µ$", billed, a.TotalCostMicroUSD)
				}
				if down := seriesSum(t, sb.String(), "jupiter_downtime_minutes_sum"); int64(down) != a.TotalDownMinutes {
					t.Errorf("downtime histogram mass %v min != attributed downtime %d min", down, a.TotalDownMinutes)
				}
			})
		}
	}
}

// TestTournamentProvenanceJIdentity pins the determinism contract for
// the observability outputs: a tournament run with spans and
// attribution enabled emits byte-identical leaderboard JSON and
// byte-identical span streams at any worker-pool width.
func TestTournamentProvenanceJIdentity(t *testing.T) {
	run := func(jobs int) (leaderboard, spans []byte) {
		e := QuickEnv()
		e.Jobs = jobs
		res, err := e.Tournament(TournamentConfig{
			Specs:      []string{"jupiter", "baseline"},
			Scenarios:  []string{"calm", "reclaim-storm"},
			Seeds:      []uint64{2014},
			SpanSample: 4,
			Attribute:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		js, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := provenance.WriteSpans(&buf, telemetry.SortedMeta("suite", "j-identity"), res.Spans); err != nil {
			t.Fatal(err)
		}
		return js, buf.Bytes()
	}
	j1, s1 := run(1)
	j4, s4 := run(4)
	if !bytes.Equal(j1, j4) {
		t.Errorf("leaderboard JSON differs between -j 1 and -j 4: %d vs %d bytes", len(j1), len(j4))
	}
	if !bytes.Equal(s1, s4) {
		t.Errorf("span stream differs between -j 1 and -j 4: %d vs %d bytes", len(s1), len(s4))
	}
	// Sanity: the stream actually carries stamped spans from both cells.
	for _, want := range []string{`"scenario":"reclaim-storm"`, `"scenario":"calm"`, `"strategy":"Jupiter"`} {
		if !bytes.Contains(s1, []byte(want)) {
			t.Errorf("span stream missing %s", want)
		}
	}
}
