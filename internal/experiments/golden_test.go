package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current implementation")

// renderAllDrivers runs every experiment driver (T1, F1, F4–F9, H1, X1,
// A1–A4) at the given environment and concatenates their rendered
// outputs. Every number the drivers emit flows into this string, so a
// byte-level comparison against the recorded golden file proves the
// whole evaluation pipeline — trace generation, the simulated control
// plane, the replay kernel, and every strategy — is unchanged.
func renderAllDrivers(t *testing.T, env Env) string {
	t.Helper()
	var b strings.Builder
	section := func(name, body string) {
		fmt.Fprintf(&b, "== %s ==\n%s\n", name, body)
	}
	must := func(out string, err error) string {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	section("Table 1", RenderTable1())
	section("Figure 1", must(env.RenderFig1()))
	section("Figure 4", must(env.RenderFig4()))
	section("Figure 5", must(env.RenderFig5()))

	lockRows, err := env.Fig6and7()
	if err != nil {
		t.Fatal(err)
	}
	section("Figures 6 and 7", RenderSweep(lockRows, "lock"))
	storageRows, err := env.Fig8and9()
	if err != nil {
		t.Fatal(err)
	}
	section("Figures 8 and 9", RenderSweep(storageRows, "storage"))

	var hs []Headline
	for _, svc := range []struct {
		name   string
		rows   []SweepRow
		target float64
	}{
		{"lock", lockRows, LockSpec().TargetAvailability()},
		{"storage", storageRows, StorageSpec().TargetAvailability()},
	} {
		h, err := HeadlineFrom(svc.rows, svc.name, svc.target)
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	section("Headline", RenderHeadline(hs))
	section("Section 3 worked example", must(env.RenderExample3()))

	ablation, err := env.AblationEstimators()
	if err != nil {
		t.Fatal(err)
	}
	section("Ablation: failure estimator", RenderAblation(ablation))
	adaptive, err := env.AblationAdaptiveInterval()
	if err != nil {
		t.Fatal(err)
	}
	section("Extension: adaptive bidding interval", RenderAdaptive(adaptive))
	refine, err := env.AblationRefinement()
	if err != nil {
		t.Fatal(err)
	}
	section("Extension: heterogeneous-bid refinement", RenderRefinement(refine))
	weighted, err := env.WeightedVotingAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	section("Analysis: weighted voting", RenderWeightedVoting(weighted))
	return b.String()
}

// TestGoldenDrivers locks every experiment driver's output to the
// recorded golden file. The file was captured from the pre-event-kernel
// per-minute implementation, so this test is the before/after witness
// that the discrete-event refactor reproduces the original evaluation
// exactly. Regenerate deliberately with:
//
//	go test ./internal/experiments -run TestGoldenDrivers -update
func TestGoldenDrivers(t *testing.T) {
	got := renderAllDrivers(t, QuickEnv())
	path := filepath.Join("testdata", "golden_quick.txt")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("driver output diverged from golden file %s.\nDiff the output of `go test -run TestGoldenDrivers -update` against git to inspect.\ngot %d bytes, want %d bytes\nfirst divergence: %s",
			path, len(got), len(want), firstDiff(got, string(want)))
	}
}

// firstDiff locates the first differing line for a readable failure.
func firstDiff(got, want string) string {
	g, w := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return fmt.Sprintf("line %d:\n  got:  %q\n  want: %q", i+1, g[i], w[i])
		}
	}
	return fmt.Sprintf("line counts differ: got %d, want %d", len(g), len(w))
}
