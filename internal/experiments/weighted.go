package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/quorum"
	"repro/internal/trace"
)

// WeightedVotingReport quantifies the §4.1 design discussion: Jupiter
// keeps a simple majority quorum with equalized per-node failure
// targets instead of the theoretically optimal weighted voting. This
// analysis takes one real Jupiter decision, evaluates the chosen bids'
// heterogeneous failure probabilities, and compares the service
// availability of a simple majority against the Equation 11 optimal
// weighted-voting assignment on the same nodes.
type WeightedVotingReport struct {
	Zones                []string
	FailureProbabilities []float64
	MajorityAvailability float64
	WeightedAvailability float64
	// GapDowntimeSecMonth converts the availability gap to seconds of
	// monthly downtime given up by using simple majority.
	GapDowntimeSecMonth float64
}

// WeightedVotingAnalysis runs one Jupiter decision on the lock-service
// market and compares quorum rules over the chosen instance set.
func (e Env) WeightedVotingAnalysis() (*WeightedVotingReport, error) {
	set, err := e.Traces(market.M1Small)
	if err != nil {
		return nil, err
	}
	j := core.New()
	if err := j.TrainOn(set.Window(set.Start, e.TrainWeeks*Week)); err != nil {
		return nil, err
	}
	j.RetrainEvery = 0
	view := setView{set: set, now: e.TrainWeeks * Week}
	decision, err := j.Decide(view, LockSpec(), 60)
	if err != nil {
		return nil, err
	}
	if len(decision.Bids) == 0 {
		return nil, fmt.Errorf("experiments: Jupiter fell back to on-demand")
	}
	fps := j.LastBidFailureProbabilities()
	rep := &WeightedVotingReport{}
	for _, b := range decision.Bids {
		rep.Zones = append(rep.Zones, b.Zone)
	}
	sort.Strings(rep.Zones)
	for _, z := range rep.Zones {
		rep.FailureProbabilities = append(rep.FailureProbabilities, fps[z])
	}
	n := len(rep.FailureProbabilities)
	rep.MajorityAvailability = quorum.Availability(quorum.Majority(n), rep.FailureProbabilities)
	rep.WeightedAvailability = quorum.Availability(quorum.OptimalSystem(rep.FailureProbabilities), rep.FailureProbabilities)
	rep.GapDowntimeSecMonth = quorum.DowntimeSeconds(rep.MajorityAvailability, quorum.SecondsPerMonth) -
		quorum.DowntimeSeconds(rep.WeightedAvailability, quorum.SecondsPerMonth)
	return rep, nil
}

// RenderWeightedVoting prints the analysis.
func RenderWeightedVoting(r *WeightedVotingReport) string {
	var b strings.Builder
	b.WriteString("Analysis: simple majority vs optimal weighted voting (§4.1)\n")
	fmt.Fprintf(&b, "%-18s %s\n", "zone", "per-interval FP at chosen bid")
	for i, z := range r.Zones {
		fmt.Fprintf(&b, "%-18s %.6f\n", z, r.FailureProbabilities[i])
	}
	fmt.Fprintf(&b, "majority availability:       %.10f\n", r.MajorityAvailability)
	fmt.Fprintf(&b, "weighted-voting availability: %.10f\n", r.WeightedAvailability)
	fmt.Fprintf(&b, "downtime given up by majority: %.2f s/month\n", r.GapDowntimeSecMonth)
	return b.String()
}

// setView serves a static trace set as a market view positioned at a
// given minute.
type setView struct {
	set *trace.Set
	now int64
}

func (v setView) Now() int64      { return v.now }
func (v setView) Zones() []string { return v.set.Zones() }

func (v setView) SpotPrice(zone string) (market.Money, error) {
	tr, ok := v.set.ByZone[zone]
	if !ok {
		return 0, fmt.Errorf("experiments: unknown zone %q", zone)
	}
	return tr.PriceAt(v.now), nil
}

func (v setView) SpotPriceAge(zone string) (int64, error) {
	tr, ok := v.set.ByZone[zone]
	if !ok {
		return 0, fmt.Errorf("experiments: unknown zone %q", zone)
	}
	return tr.AgeAt(v.now), nil
}

func (v setView) PriceHistory(zone string, from, to int64) (*trace.Trace, error) {
	tr, ok := v.set.ByZone[zone]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown zone %q", zone)
	}
	if from < tr.Start {
		from = tr.Start
	}
	if to > v.now {
		to = v.now
	}
	if to < from {
		to = from
	}
	return tr.Window(from, to), nil
}
