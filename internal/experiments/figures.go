package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/quorum"
	"repro/internal/smc"
	"repro/internal/strategy"
	"repro/internal/trace"
)

// --- Table 1 ---

// Table1 returns the region catalog (paper Table 1).
func Table1() []market.Region { return market.Regions() }

// --- Figure 1 ---

// Fig1 reproduces the Figure 1 artifact: a two-hour spot price history
// sample for a us-east-1a m1.small instance at one-minute resolution.
func (e Env) Fig1() (*trace.Trace, error) {
	set, err := trace.Generate(trace.GenConfig{
		Seed: e.Seed, Type: market.M1Small,
		Zones: []string{"us-east-1a"},
		Start: 0, End: e.TrainWeeks * Week,
	})
	if err != nil {
		return nil, err
	}
	tr := set.ByZone["us-east-1a"]
	// A deterministic mid-trace morning window (9:00–11:00 of some day).
	day := e.TrainWeeks * Week / 2 / (24 * 60) * (24 * 60)
	lo := day + 9*60
	hi := lo + 2*60
	if hi >= tr.End {
		lo, hi = tr.Start, min64(tr.Start+120, tr.End)
	}
	return tr.Window(lo, hi), nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// --- Figure 4 ---

// Fig4Zones are the five availability zones shown in the figure.
var Fig4Zones = []string{"us-east-1a", "us-west-2b", "ap-northeast-1a", "eu-west-1c", "sa-east-1b"}

// Fig4Row is one bar of Figure 4: the measured out-of-bid failure
// probability of a bid chosen for an estimated probability of 0.01.
type Fig4Row struct {
	Zone     string
	Type     market.InstanceType
	TargetFP float64
	Bid      market.Money
	Measured float64
}

// Fig4 trains the spot-instance failure model per zone, picks the
// minimal bid with estimated month-scale out-of-bid probability <= 0.01,
// and measures the realized out-of-bid fraction on a held-out month.
func (e Env) Fig4() ([]Fig4Row, error) {
	const target = 0.01
	const holdout = 4 * Week // "the month's spot prices data"
	var rows []Fig4Row
	for _, it := range []market.InstanceType{market.M1Small, market.M3Large} {
		set, err := trace.Generate(trace.GenConfig{
			Seed: e.Seed, Type: it,
			Zones: Fig4Zones,
			Start: 0, End: e.TrainWeeks*Week + holdout,
		})
		if err != nil {
			return nil, err
		}
		for _, zone := range Fig4Zones {
			full := set.ByZone[zone]
			train := full.Window(0, e.TrainWeeks*Week)
			test := full.Window(e.TrainWeeks*Week, full.End)
			est := smc.NewEstimator(0)
			est.Observe(train)
			model, err := est.Model()
			if err != nil {
				return nil, fmt.Errorf("experiments: fig4 %s/%s: %w", zone, it, err)
			}
			f, err := model.Stationary()
			if err != nil {
				return nil, err
			}
			od, err := market.OnDemandPrice(zone, it)
			if err != nil {
				return nil, err
			}
			// Out-of-bid probability only: fp0 = 0 (Figure 4 measures
			// out-of-bid failures, not SLA outages).
			bid, ok := f.MinimalBid(target, 0, od)
			if !ok {
				bid = od // cap at on-demand, the framework's rule
			}
			rows = append(rows, Fig4Row{
				Zone:     zone,
				Type:     it,
				TargetFP: target,
				Bid:      bid,
				Measured: test.FractionAbove(bid),
			})
		}
	}
	return rows, nil
}

// --- Figure 5 ---

// Fig5Row is one bar of Figure 5: one-week cost per service and
// strategy, with the observed availability alongside.
type Fig5Row struct {
	Service      string
	Strategy     string
	Cost         market.Money
	Availability float64
}

// Fig5 reproduces the one-week feasibility run (§5.4): Jupiter vs
// Extra(0, 0.1) vs the on-demand baseline, with 1-hour bidding
// intervals, for both experimental services.
func (e Env) Fig5() ([]Fig5Row, error) {
	week1 := e
	week1.ReplayWeeks = 1
	specs := []struct {
		name string
		spec strategy.ServiceSpec
	}{
		{"lock", LockSpec()},
		{"storage", StorageSpec()},
	}
	strategies := []func() strategy.Strategy{
		func() strategy.Strategy { return core.New() },
		func() strategy.Strategy { return strategy.Extra{ExtraNodes: 0, Portion: 0.1} },
		func() strategy.Strategy { return strategy.OnDemand{} },
	}
	var rows []Fig5Row
	for _, sp := range specs {
		set, err := week1.Traces(sp.spec.Type)
		if err != nil {
			return nil, err
		}
		for _, mk := range strategies {
			strat := mk()
			res, err := week1.replayOne(set, sp.spec, strat, 1)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig5Row{
				Service:      sp.name,
				Strategy:     strat.Name(),
				Cost:         res.Cost,
				Availability: res.Availability,
			})
		}
	}
	return rows, nil
}

// --- §3 worked example ---

// Example3Result carries the §3 arithmetic: the availability of a
// 5-node on-demand deployment, its expected monthly downtime, and the
// measured downtime when the same service naively bids the current spot
// price in five zones.
type Example3Result struct {
	OnDemandAvailability float64
	OnDemandDowntimeSec  float64
	NaiveAvailability    float64
	NaiveDowntimeSec     float64
}

// Example3 reproduces the §3 worked example.
func (e Env) Example3() (Example3Result, error) {
	var out Example3Result
	out.OnDemandAvailability = quorum.AvailabilityEqual(5, 3, market.OnDemandFailureProbability)
	out.OnDemandDowntimeSec = quorum.DowntimeSeconds(out.OnDemandAvailability, quorum.SecondsPerMonth)

	// Naive spot bidding: bid exactly the spot price (Extra(0, 0)) and
	// replay one month.
	monthEnv := e
	monthEnv.TrainWeeks = 2
	monthEnv.ReplayWeeks = 4
	set, err := monthEnv.Traces(market.M1Small)
	if err != nil {
		return out, err
	}
	res, err := monthEnv.replayOne(set, LockSpec(), strategy.Extra{ExtraNodes: 0, Portion: 0}, 1)
	if err != nil {
		return out, err
	}
	out.NaiveAvailability = res.Availability
	// Scale measured downtime to a 30-day month.
	out.NaiveDowntimeSec = (1 - res.Availability) * quorum.SecondsPerMonth
	return out, nil
}
