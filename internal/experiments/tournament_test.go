package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// quickTournament runs the shipped arena — the full default roster,
// every builtin scenario, the default three seeds — at the quick scale.
func quickTournament(t *testing.T, reg *telemetry.Registry) *TournamentResult {
	t.Helper()
	e := QuickEnv()
	e.Jobs = 4
	res, err := e.Tournament(TournamentConfig{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTournamentAcceptance is the arena's headline property: Jupiter
// meets the availability bound on every scenario, and every rival
// either violates the bound somewhere or pays more on average.
func TestTournamentAcceptance(t *testing.T) {
	res := quickTournament(t, nil)
	if len(res.Rows) < 6 {
		t.Fatalf("roster of %d strategies, want >= 6", len(res.Rows))
	}
	if len(res.Scenarios) < 5 {
		t.Fatalf("%d scenarios, want >= 5", len(res.Scenarios))
	}
	if len(res.Seeds) < 3 {
		t.Fatalf("%d seeds, want >= 3", len(res.Seeds))
	}
	ji := rowIndex(res.Rows, "Jupiter")
	if ji < 0 {
		t.Fatal("no Jupiter row")
	}
	jup := res.Rows[ji]
	if jup.ScenariosMet != len(res.Scenarios) {
		var miss []string
		for _, s := range jup.Scenarios {
			if !s.MeetsBound {
				miss = append(miss, s.Scenario)
			}
		}
		t.Fatalf("Jupiter misses the availability bound on %s", strings.Join(miss, ", "))
	}
	brokenRival := false
	for _, row := range res.Rows {
		if row.Strategy == "Jupiter" {
			continue
		}
		if row.ScenariosMet < len(res.Scenarios) || row.MeanCostDollars > jup.MeanCostDollars {
			brokenRival = true
		} else {
			t.Errorf("rival %s meets every bound at mean cost %.2f <= Jupiter's %.2f",
				row.Strategy, row.MeanCostDollars, jup.MeanCostDollars)
		}
	}
	if !brokenRival {
		t.Error("no rival violates a bound or costs more than Jupiter — the arena proves nothing")
	}
	// The grid must be complete: every (strategy, scenario, seed) cell.
	if want := len(res.Rows) * len(res.Scenarios) * len(res.Seeds); len(res.Cells) != want {
		t.Fatalf("%d cells, want %d", len(res.Cells), want)
	}
}

// TestTournamentDeterminism: equal-seed tournaments render
// byte-identical leaderboards, JSON and table alike, at any
// parallelism.
func TestTournamentDeterminism(t *testing.T) {
	a := quickTournament(t, nil)
	e := QuickEnv()
	e.Jobs = 1 // sequential must equal parallel
	b, err := e.Tournament(TournamentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	aj, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("equal-seed leaderboards differ:\n%s\nvs\n%s", aj, bj)
	}
	if ra, rb := RenderTournament(a), RenderTournament(b); ra != rb {
		t.Fatalf("equal-seed tables differ:\n%s\nvs\n%s", ra, rb)
	}
}

// TestTournamentAutoscaledCell: the Autoscale option arms every cell
// (and the baseline) with a per-seed synthetic workload; Jupiter must
// still meet the availability bound on a flash-crowd scenario while
// the fleet actually resizes, and the autoscaled run must differ from
// the fixed-size one.
func TestTournamentAutoscaledCell(t *testing.T) {
	e := QuickEnv()
	cfg := TournamentConfig{
		Specs:     []string{"jupiter", "baseline"},
		Scenarios: []string{"flash-crowd"},
		Seeds:     []uint64{2014},
	}
	fixed, err := e.Tournament(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Autoscale = true
	auto, err := e.Tournament(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ji := rowIndex(auto.Rows, "Jupiter")
	if ji < 0 {
		t.Fatal("no Jupiter row")
	}
	if met := auto.Rows[ji].ScenariosMet; met != len(auto.Scenarios) {
		t.Errorf("autoscaled Jupiter meets %d/%d bounds", met, len(auto.Scenarios))
	}
	fi := rowIndex(fixed.Rows, "Jupiter")
	if fixed.Rows[fi].MeanCostDollars == auto.Rows[ji].MeanCostDollars &&
		fixed.Rows[fi].MeanAvailability == auto.Rows[ji].MeanAvailability {
		t.Error("autoscaled cell identical to fixed-size cell: the workload never armed")
	}
	// Determinism: the autoscaled arena is as repeatable as the fixed one.
	again, err := e.Tournament(cfg)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := auto.JSON()
	bj, _ := again.JSON()
	if !bytes.Equal(aj, bj) {
		t.Fatalf("equal-seed autoscaled leaderboards differ:\n%s\nvs\n%s", aj, bj)
	}
}

// TestTournamentScenarioLabel: with a registry attached, every cell's
// collector stamps the scenario as a fourth base label, so the
// deterministic snapshot keys series per scenario.
func TestTournamentScenarioLabel(t *testing.T) {
	reg := telemetry.NewRegistry()
	res := quickTournament(t, reg)
	snap := reg.Snapshot()
	found := map[string]bool{}
	for _, fam := range snap.Families {
		for _, s := range fam.Series {
			for i, l := range fam.Labels {
				if l == "scenario" {
					found[s.LabelValues[i]] = true
				}
			}
		}
	}
	for _, sc := range res.Scenarios {
		if !found[sc] {
			t.Errorf("no series labeled scenario=%q in the snapshot", sc)
		}
	}
}
