package spotstats

import (
	"math"
	"testing"

	"repro/internal/market"
	"repro/internal/smc"
	"repro/internal/trace"
)

const week = int64(7 * 24 * 60)

func genZone(t *testing.T, zone string, seed uint64, weeks int64) *trace.Trace {
	t.Helper()
	set, err := trace.Generate(trace.GenConfig{
		Seed: seed, Type: market.M1Small,
		Zones: []string{zone}, Start: 0, End: weeks * week,
	})
	if err != nil {
		t.Fatal(err)
	}
	return set.ByZone[zone]
}

func TestAnalyze(t *testing.T) {
	tr := genZone(t, "us-east-1a", 1, 4)
	r, err := Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Zone != "us-east-1a" || r.Minutes != 4*week {
		t.Fatalf("report identity: %+v", r)
	}
	if r.Changes < 100 {
		t.Fatalf("only %d changes in 4 weeks", r.Changes)
	}
	if r.ChangesPerHour <= 0 {
		t.Fatal("non-positive change rate")
	}
	if r.MeanPrice <= 0 || r.MaxPrice < r.MeanPrice {
		t.Fatalf("prices: mean %v max %v", r.MeanPrice, r.MaxPrice)
	}
	if r.FractionAboveOD < 0 || r.FractionAboveOD > 0.3 {
		t.Fatalf("fraction above on-demand %v", r.FractionAboveOD)
	}
	sum := 0.0
	for _, ls := range r.LevelOccupancy {
		sum += ls.Share
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("level occupancy sums to %v", sum)
	}
	// Levels ascending.
	for i := 1; i < len(r.LevelOccupancy); i++ {
		if r.LevelOccupancy[i].Price <= r.LevelOccupancy[i-1].Price {
			t.Fatal("levels not ascending")
		}
	}
}

func TestAnalyzeEmptyTrace(t *testing.T) {
	tr := &trace.Trace{Zone: "us-east-1a", Type: market.M1Small}
	if _, err := Analyze(tr); err == nil {
		t.Fatal("empty trace analyzed")
	}
}

func TestChapmanKolmogorovOnMarkovData(t *testing.T) {
	// Generated traces ARE semi-Markov, so the embedded chain is
	// Markov: CK deviations should be small sampling noise.
	tr := genZone(t, "us-west-2a", 2, 13)
	rep, err := ChapmanKolmogorov(tr, 30)
	if err != nil {
		t.Fatal(err)
	}
	if rep.States < 3 {
		t.Fatalf("only %d states", rep.States)
	}
	if rep.RowsTested == 0 {
		t.Fatal("no rows tested")
	}
	if rep.MeanAbsDiff > 0.08 {
		t.Fatalf("mean CK deviation %v too large for Markov data", rep.MeanAbsDiff)
	}
}

func TestChapmanKolmogorovRejectsNonMarkov(t *testing.T) {
	// A period-3 deterministic cycle A->B->A->C->A->B... is NOT Markov
	// in its embedded chain: after A the successor alternates B, C
	// depending on history.
	a, b, c := market.Money(100), market.Money(200), market.Money(300)
	tr := &trace.Trace{Zone: "x", Type: market.M1Small, Start: 0}
	seqPrices := []market.Money{}
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			seqPrices = append(seqPrices, a)
		} else if (i/2)%2 == 0 {
			seqPrices = append(seqPrices, b)
		} else {
			seqPrices = append(seqPrices, c)
		}
	}
	for i, p := range seqPrices {
		tr.Points = append(tr.Points, trace.PricePoint{Minute: int64(i * 10), Price: p})
	}
	tr.End = int64(len(seqPrices) * 10)
	rep, err := ChapmanKolmogorov(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	// From A, one step goes to B or C (50/50); two steps always return
	// to A. P^2 predicts A->A with prob 1 as well here... use the B
	// row: after B the chain always goes to A then alternately B/C, so
	// two-step B->B differs from (P^2)'s 0.5 prediction.
	if rep.MaxAbsDiff < 0.2 {
		t.Fatalf("CK deviation %v too small for non-Markov data", rep.MaxAbsDiff)
	}
}

func TestChapmanKolmogorovTooShort(t *testing.T) {
	tr := &trace.Trace{Zone: "x", Type: market.M1Small, Start: 0, End: 10,
		Points: []trace.PricePoint{{Minute: 0, Price: 100}}}
	if _, err := ChapmanKolmogorov(tr, 0); err == nil {
		t.Fatal("short trace accepted")
	}
}

func TestHourBoundaryUniform(t *testing.T) {
	// Generated traces change at arbitrary minutes: the hour-boundary
	// ratio should be near 1 (the 2014 regime the paper describes).
	tr := genZone(t, "eu-west-1a", 3, 13)
	rep := HourBoundary(tr)
	if rep.Changes < 500 {
		t.Fatalf("only %d changes", rep.Changes)
	}
	if rep.Ratio < 0.6 || rep.Ratio > 1.6 {
		t.Fatalf("hour-boundary ratio %v, want ~1 for uniform change times", rep.Ratio)
	}
}

func TestHourBoundaryClustered(t *testing.T) {
	// Synthetic 2011-style trace: every change exactly on the hour.
	tr := &trace.Trace{Zone: "x", Type: market.M1Small, Start: 0, End: 100 * 60}
	for h := 0; h < 100; h++ {
		price := market.Money(100 + (h%2)*50)
		tr.Points = append(tr.Points, trace.PricePoint{Minute: int64(h * 60), Price: price})
	}
	rep := HourBoundary(tr)
	if rep.Ratio < 5 {
		t.Fatalf("hourly repricing ratio %v, want >> 1", rep.Ratio)
	}
}

func TestCrossZoneCorrelationLow(t *testing.T) {
	a := genZone(t, "us-east-1a", 4, 8)
	b := genZone(t, "us-east-1b", 4, 8)
	r, err := Correlation(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r) > 0.2 {
		t.Fatalf("independent zones correlate at %v", r)
	}
	// Self-correlation is 1.
	self, err := Correlation(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(self-1) > 1e-9 {
		t.Fatalf("self correlation %v", self)
	}
}

func TestCorrelationShortOverlap(t *testing.T) {
	a := genZone(t, "us-east-1a", 5, 1)
	b := a.Window(a.End-90, a.End)
	if _, err := Correlation(a, b); err == nil {
		t.Fatal("short overlap accepted")
	}
}

func TestSuggestBids(t *testing.T) {
	tr := genZone(t, "sa-east-1a", 6, 13)
	e := smc.NewEstimator(0)
	e.Observe(tr)
	m, err := e.Model()
	if err != nil {
		t.Fatal(err)
	}
	f, err := m.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	sug, err := SuggestBids(tr, []float64{0.10, 0.01}, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(sug) != 2 {
		t.Fatalf("%d suggestions", len(sug))
	}
	if !sug[0].OK || !sug[1].OK {
		t.Fatalf("suggestions not feasible: %+v", sug)
	}
	// Tighter targets need equal-or-higher bids.
	if sug[1].Bid < sug[0].Bid {
		t.Fatalf("1%% bid %v below 10%% bid %v", sug[1].Bid, sug[0].Bid)
	}
}
