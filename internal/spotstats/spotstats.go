// Package spotstats provides the statistical analyses the paper's
// modeling choices rest on: descriptive per-zone price diagnostics, a
// Chapman-Kolmogorov check of the Markov property of the price sequence
// (the paper's [15]/[31] verified this for real EC2 data), the
// hour-boundary change analysis of Wee [34] (hourly price spikes in
// 2011, gone by 2014), and cross-zone price correlation (validating the
// failure-independence assumption behind the quorum availability
// model).
package spotstats

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/market"
	"repro/internal/stats"
	"repro/internal/trace"
)

// ZoneReport summarizes one zone's price behaviour.
type ZoneReport struct {
	Zone            string
	Type            market.InstanceType
	Minutes         int64
	Changes         int
	ChangesPerHour  float64
	MeanPrice       market.Money
	MaxPrice        market.Money
	OnDemand        market.Money
	FractionAboveOD float64
	SojournMinutes  stats.Summary
	// LevelOccupancy maps each observed price to its time share.
	LevelOccupancy []LevelShare
}

// LevelShare is one price level's share of time.
type LevelShare struct {
	Price market.Money
	Share float64
}

// Analyze produces descriptive statistics for a zone trace.
func Analyze(tr *trace.Trace) (*ZoneReport, error) {
	if tr.End <= tr.Start {
		return nil, fmt.Errorf("spotstats: empty trace")
	}
	od, err := market.OnDemandPrice(tr.Zone, tr.Type)
	if err != nil {
		return nil, err
	}
	runs := tr.Sojourns()
	r := &ZoneReport{
		Zone:            tr.Zone,
		Type:            tr.Type,
		Minutes:         tr.End - tr.Start,
		Changes:         len(runs) - 1,
		MeanPrice:       tr.MeanPrice(),
		MaxPrice:        tr.MaxPrice(),
		OnDemand:        od,
		FractionAboveOD: tr.FractionAbove(od),
	}
	r.ChangesPerHour = float64(r.Changes) / (float64(r.Minutes) / 60)
	durations := make([]float64, len(runs))
	occ := map[market.Money]int64{}
	for i, run := range runs {
		durations[i] = float64(run.Minutes)
		occ[run.Price] += run.Minutes
	}
	r.SojournMinutes = stats.Summarize(durations)
	prices := make([]market.Money, 0, len(occ))
	for p := range occ {
		prices = append(prices, p)
	}
	sort.Slice(prices, func(a, b int) bool { return prices[a] < prices[b] })
	for _, p := range prices {
		r.LevelOccupancy = append(r.LevelOccupancy, LevelShare{
			Price: p,
			Share: float64(occ[p]) / float64(r.Minutes),
		})
	}
	return r, nil
}

// CKReport is the Chapman-Kolmogorov consistency check of the embedded
// price-change chain: if the sequence is Markov, the empirical two-step
// transition matrix matches the square of the one-step matrix.
type CKReport struct {
	States int
	// MaxAbsDiff and MeanAbsDiff compare P_emp^(2) against (P_emp)^2
	// entry-wise over rows with enough support.
	MaxAbsDiff  float64
	MeanAbsDiff float64
	// RowsTested counts the (i, j) pairs compared.
	RowsTested int
}

// ChapmanKolmogorov runs the Markov-property check on a trace's price
// sequence. minSupport drops sparse rows (default 20 when <= 0).
func ChapmanKolmogorov(tr *trace.Trace, minSupport int) (*CKReport, error) {
	if minSupport <= 0 {
		minSupport = 20
	}
	runs := tr.Sojourns()
	if len(runs) < 3 {
		return nil, fmt.Errorf("spotstats: trace too short for a CK check")
	}
	idx := map[market.Money]int{}
	var seq []int
	for _, run := range runs {
		i, ok := idx[run.Price]
		if !ok {
			i = len(idx)
			idx[run.Price] = i
		}
		seq = append(seq, i)
	}
	n := len(idx)
	one := make([][]float64, n)
	two := make([][]float64, n)
	oneCount := make([]int, n)
	twoCount := make([]int, n)
	for i := range one {
		one[i] = make([]float64, n)
		two[i] = make([]float64, n)
	}
	for k := 0; k+1 < len(seq); k++ {
		one[seq[k]][seq[k+1]]++
		oneCount[seq[k]]++
	}
	for k := 0; k+2 < len(seq); k++ {
		two[seq[k]][seq[k+2]]++
		twoCount[seq[k]]++
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if oneCount[i] > 0 {
				one[i][j] /= float64(oneCount[i])
			}
			if twoCount[i] > 0 {
				two[i][j] /= float64(twoCount[i])
			}
		}
	}
	// (P)^2
	sq := make([][]float64, n)
	for i := range sq {
		sq[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				sq[i][j] += one[i][k] * one[k][j]
			}
		}
	}
	rep := &CKReport{States: n}
	sum := 0.0
	for i := 0; i < n; i++ {
		if twoCount[i] < minSupport {
			continue
		}
		for j := 0; j < n; j++ {
			d := math.Abs(two[i][j] - sq[i][j])
			if d > rep.MaxAbsDiff {
				rep.MaxAbsDiff = d
			}
			sum += d
			rep.RowsTested++
		}
	}
	if rep.RowsTested > 0 {
		rep.MeanAbsDiff = sum / float64(rep.RowsTested)
	}
	return rep, nil
}

// HourBoundaryReport quantifies Wee's 2011 observation: whether price
// changes cluster at hour boundaries.
type HourBoundaryReport struct {
	Changes int
	// NearBoundary counts changes within ±2 minutes of a wall-clock
	// hour; Expected is the count a uniform distribution would give.
	NearBoundary int
	Expected     float64
	// Ratio = NearBoundary / Expected: ~1 means no hourly clustering
	// (the 2014 regime), >> 1 means hourly repricing (the 2011 regime).
	Ratio float64
}

// HourBoundary measures hour-boundary clustering of price changes.
func HourBoundary(tr *trace.Trace) *HourBoundaryReport {
	rep := &HourBoundaryReport{}
	for _, p := range tr.Points[1:] { // skip the span-start point
		rep.Changes++
		m := p.Minute % 60
		if m <= 2 || m >= 58 {
			rep.NearBoundary++
		}
	}
	rep.Expected = float64(rep.Changes) * 5.0 / 60.0
	if rep.Expected > 0 {
		rep.Ratio = float64(rep.NearBoundary) / rep.Expected
	}
	return rep
}

// Correlation returns the Pearson correlation of two zones' hourly mean
// prices over their common span — near zero validates the
// failure-independence assumption across availability zones.
func Correlation(a, b *trace.Trace) (float64, error) {
	lo := a.Start
	if b.Start > lo {
		lo = b.Start
	}
	hi := a.End
	if b.End < hi {
		hi = b.End
	}
	if hi-lo < 2*60 {
		return 0, fmt.Errorf("spotstats: overlap too short")
	}
	var xs, ys []float64
	for h := lo; h+60 <= hi; h += 60 {
		xs = append(xs, hourMean(a, h))
		ys = append(ys, hourMean(b, h))
	}
	return pearson(xs, ys), nil
}

func hourMean(tr *trace.Trace, from int64) float64 {
	w := tr.Window(from, from+60)
	return w.MeanPrice().Dollars()
}

func pearson(xs, ys []float64) float64 {
	mx, my := stats.Mean(xs), stats.Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// MemorylessnessReport quantifies why the paper uses a *semi*-Markov
// model: sojourn times between price changes are not exponentially
// distributed (not memoryless), measured by the Kolmogorov-Smirnov
// distance between the empirical sojourn distribution and an
// exponential with the same mean.
type MemorylessnessReport struct {
	Sojourns int
	MeanMin  float64
	// KS is the Kolmogorov-Smirnov statistic against Exp(1/mean);
	// values well above the ~1.36/sqrt(n) significance bound reject
	// memorylessness.
	KS float64
	// SignificanceBound is the 5% KS critical value for this sample.
	SignificanceBound float64
	// CoefficientOfVariation: 1 for exponential; lower = more regular.
	CoefficientOfVariation float64
}

// Memorylessness runs the sojourn-distribution check on a trace.
func Memorylessness(tr *trace.Trace) (*MemorylessnessReport, error) {
	runs := tr.Sojourns()
	if len(runs) < 10 {
		return nil, fmt.Errorf("spotstats: %d sojourns too few", len(runs))
	}
	xs := make([]float64, len(runs))
	for i, r := range runs {
		xs[i] = float64(r.Minutes)
	}
	sort.Float64s(xs)
	mean := stats.Mean(xs)
	if mean <= 0 {
		return nil, fmt.Errorf("spotstats: degenerate sojourns")
	}
	ks := 0.0
	n := float64(len(xs))
	for i, x := range xs {
		f := 1 - math.Exp(-x/mean) // exponential CDF
		lo := float64(i) / n
		hi := float64(i+1) / n
		if d := math.Abs(f - lo); d > ks {
			ks = d
		}
		if d := math.Abs(f - hi); d > ks {
			ks = d
		}
	}
	sd := math.Sqrt(stats.Variance(xs))
	return &MemorylessnessReport{
		Sojourns:               len(xs),
		MeanMin:                mean,
		KS:                     ks,
		SignificanceBound:      1.36 / math.Sqrt(n),
		CoefficientOfVariation: sd / mean,
	}, nil
}

// SuggestedBids returns, for a list of failure-probability targets, the
// minimal stationary-model bid in each — the analysis a bidder would
// run before trusting a zone.
type BidSuggestion struct {
	TargetFP float64
	Bid      market.Money
	OK       bool
}

// SuggestBids trains a stationary model on the trace and evaluates the
// given out-of-bid probability targets.
func SuggestBids(tr *trace.Trace, targets []float64, estimator interface {
	MinimalBid(target, fp0 float64, cap market.Money) (market.Money, bool)
}) ([]BidSuggestion, error) {
	od, err := market.OnDemandPrice(tr.Zone, tr.Type)
	if err != nil {
		return nil, err
	}
	out := make([]BidSuggestion, 0, len(targets))
	for _, t := range targets {
		bid, ok := estimator.MinimalBid(t, 0, od)
		out = append(out, BidSuggestion{TargetFP: t, Bid: bid, OK: ok})
	}
	return out, nil
}
