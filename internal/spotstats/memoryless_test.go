package spotstats

import (
	"testing"

	"repro/internal/market"
	"repro/internal/stats"
	"repro/internal/trace"
)

func TestMemorylessnessRejectsLognormalSojourns(t *testing.T) {
	// Generated traces use lognormal sojourns (sigma 0.7), which are
	// NOT memoryless: the KS statistic must exceed the significance
	// bound — the paper's justification for a semi-Markov model.
	tr := genZone(t, "us-east-1a", 7, 13)
	rep, err := Memorylessness(tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sojourns < 1000 {
		t.Fatalf("only %d sojourns", rep.Sojourns)
	}
	if rep.KS <= rep.SignificanceBound {
		t.Fatalf("KS %v within bound %v: failed to reject memorylessness", rep.KS, rep.SignificanceBound)
	}
	// Lognormal sigma=0.7 has CV ~0.8, clearly below exponential's 1.
	if rep.CoefficientOfVariation > 0.95 {
		t.Fatalf("CV %v too close to exponential", rep.CoefficientOfVariation)
	}
}

func TestMemorylessnessAcceptsExponentialSojourns(t *testing.T) {
	// A synthetic trace with genuinely exponential sojourns should NOT
	// reject memorylessness (KS near the bound or below).
	r := stats.NewRNG(5)
	tr := &trace.Trace{Zone: "x", Type: market.M1Small, Start: 0}
	now := int64(0)
	prices := []market.Money{100, 200}
	for i := 0; i < 3000; i++ {
		tr.Points = append(tr.Points, trace.PricePoint{Minute: now, Price: prices[i%2]})
		d := int64(r.ExpFloat64(1.0/30.0)) + 1 // ~Exp(mean 30), floored
		now += d
	}
	tr.End = now
	rep, err := Memorylessness(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Flooring to integer minutes distorts slightly; allow 3x bound.
	if rep.KS > 3*rep.SignificanceBound {
		t.Fatalf("KS %v for exponential data (bound %v)", rep.KS, rep.SignificanceBound)
	}
	if rep.CoefficientOfVariation < 0.8 || rep.CoefficientOfVariation > 1.2 {
		t.Fatalf("CV %v for exponential data", rep.CoefficientOfVariation)
	}
}

func TestMemorylessnessTooShort(t *testing.T) {
	tr := &trace.Trace{Zone: "x", Type: market.M1Small, Start: 0, End: 10,
		Points: []trace.PricePoint{{Minute: 0, Price: 100}}}
	if _, err := Memorylessness(tr); err == nil {
		t.Fatal("short trace accepted")
	}
}
