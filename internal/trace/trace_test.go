package trace

import (
	"testing"

	"repro/internal/market"
)

func mkTrace(t *testing.T) *Trace {
	t.Helper()
	tr := &Trace{
		Zone:  "us-east-1a",
		Type:  market.M1Small,
		Start: 0,
		End:   100,
		Points: []PricePoint{
			{0, market.FromDollars(0.0071)},
			{30, market.FromDollars(0.0081)},
			{60, market.FromDollars(0.0117)},
			{90, market.FromDollars(0.0071)},
		},
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestPriceAt(t *testing.T) {
	tr := mkTrace(t)
	cases := []struct {
		min  int64
		want market.Money
	}{
		{0, market.FromDollars(0.0071)},
		{29, market.FromDollars(0.0071)},
		{30, market.FromDollars(0.0081)},
		{59, market.FromDollars(0.0081)},
		{60, market.FromDollars(0.0117)},
		{99, market.FromDollars(0.0071)},
	}
	for _, c := range cases {
		if got := tr.PriceAt(c.min); got != c.want {
			t.Errorf("PriceAt(%d) = %v, want %v", c.min, got, c.want)
		}
	}
}

func TestPriceAtOutOfRangePanics(t *testing.T) {
	tr := mkTrace(t)
	for _, min := range []int64{-1, 100, 200} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PriceAt(%d) did not panic", min)
				}
			}()
			tr.PriceAt(min)
		}()
	}
}

func TestValidateRejects(t *testing.T) {
	base := mkTrace(t)
	bad := []*Trace{
		{Zone: "z", Start: 10, End: 5},
		{Zone: "z", Start: 0, End: 10},                                        // no points over non-empty span
		{Zone: "z", Start: 0, End: 10, Points: []PricePoint{{5, 1}}},          // first point after start
		{Zone: "z", Start: 0, End: 10, Points: []PricePoint{{0, 1}, {0, 2}}},  // not increasing
		{Zone: "z", Start: 0, End: 10, Points: []PricePoint{{0, 1}, {10, 2}}}, // point at end
		{Zone: "z", Start: 0, End: 10, Points: []PricePoint{{0, -5}}},         // negative price
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("bad trace %d validated", i)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("good trace rejected: %v", err)
	}
}

func TestWindow(t *testing.T) {
	tr := mkTrace(t)
	w := tr.Window(45, 95)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.PriceAt(45) != market.FromDollars(0.0081) {
		t.Errorf("window start price = %v", w.PriceAt(45))
	}
	if w.PriceAt(94) != market.FromDollars(0.0071) {
		t.Errorf("window end price = %v", w.PriceAt(94))
	}
	if len(w.Points) != 3 {
		t.Errorf("window has %d points, want 3", len(w.Points))
	}
}

func TestWindowEmpty(t *testing.T) {
	tr := mkTrace(t)
	w := tr.Window(50, 50)
	if len(w.Points) != 0 {
		t.Fatalf("empty window has points")
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSojourns(t *testing.T) {
	tr := mkTrace(t)
	runs := tr.Sojourns()
	if len(runs) != 4 {
		t.Fatalf("got %d sojourns, want 4", len(runs))
	}
	wantMinutes := []int64{30, 30, 30, 10}
	for i, r := range runs {
		if r.Minutes != wantMinutes[i] {
			t.Errorf("sojourn %d = %d min, want %d", i, r.Minutes, wantMinutes[i])
		}
	}
}

func TestSojournsMergeEqualPrices(t *testing.T) {
	tr := &Trace{
		Zone: "z", Type: market.M1Small, Start: 0, End: 30,
		Points: []PricePoint{{0, 100}, {10, 100}, {20, 200}},
	}
	runs := tr.Sojourns()
	if len(runs) != 2 {
		t.Fatalf("got %d runs, want 2 (equal prices merged)", len(runs))
	}
	if runs[0].Minutes != 20 || runs[1].Minutes != 10 {
		t.Fatalf("runs = %+v", runs)
	}
}

func TestMeanMaxFraction(t *testing.T) {
	tr := mkTrace(t)
	if got := tr.MaxPrice(); got != market.FromDollars(0.0117) {
		t.Errorf("MaxPrice = %v", got)
	}
	// 40 min at 0.0071, 30 at 0.0081, 30 at 0.0117
	wantMean := market.Money((40*7100 + 30*8100 + 30*11700) / 100)
	if got := tr.MeanPrice(); got != wantMean {
		t.Errorf("MeanPrice = %v, want %v", got, wantMean)
	}
	if got := tr.FractionAbove(market.FromDollars(0.0081)); got != 0.3 {
		t.Errorf("FractionAbove(0.0081) = %v, want 0.3", got)
	}
	if got := tr.FractionAbove(market.FromDollars(1)); got != 0 {
		t.Errorf("FractionAbove(high) = %v, want 0", got)
	}
	if got := tr.FractionAbove(0); got != 1.0 {
		t.Errorf("FractionAbove(0) = %v, want 1", got)
	}
}

func TestSetAddValidation(t *testing.T) {
	s := NewSet(market.M1Small, 0, 100)
	if err := s.Add(mkTrace(t)); err != nil {
		t.Fatal(err)
	}
	wrongType := mkTrace(t)
	wrongType.Type = market.M3Large
	if err := s.Add(wrongType); err == nil {
		t.Error("wrong-type trace accepted")
	}
	wrongSpan := mkTrace(t)
	wrongSpan.End = 50
	wrongSpan.Points = wrongSpan.Points[:2]
	if err := s.Add(wrongSpan); err == nil {
		t.Error("wrong-span trace accepted")
	}
}

func TestSetZonesSorted(t *testing.T) {
	s := NewSet(market.M1Small, 0, 100)
	for _, z := range []string{"us-west-2b", "ap-northeast-1a", "eu-west-1c"} {
		tr := mkTrace(t)
		tr.Zone = z
		if err := s.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	zones := s.Zones()
	want := []string{"ap-northeast-1a", "eu-west-1c", "us-west-2b"}
	for i := range want {
		if zones[i] != want[i] {
			t.Fatalf("Zones() = %v, want %v", zones, want)
		}
	}
}

func TestSetWindow(t *testing.T) {
	s := NewSet(market.M1Small, 0, 100)
	if err := s.Add(mkTrace(t)); err != nil {
		t.Fatal(err)
	}
	w := s.Window(20, 80)
	if w.Start != 20 || w.End != 80 {
		t.Fatalf("window span [%d, %d)", w.Start, w.End)
	}
	if w.ByZone["us-east-1a"].PriceAt(20) != market.FromDollars(0.0071) {
		t.Fatal("window price mismatch")
	}
}
