package trace

import (
	"math/rand"
	"testing"

	"repro/internal/market"
)

func cursorTestTrace(t *testing.T) *Trace {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	tr := &Trace{Zone: "us-east-1a", Type: market.M1Medium, Start: 0, End: 10000}
	minute := int64(0)
	price := market.Money(58000)
	for minute < tr.End {
		tr.Points = append(tr.Points, PricePoint{Minute: minute, Price: price})
		minute += 1 + rng.Int63n(90)
		price = market.Money(40000 + rng.Int63n(120000))
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("test trace invalid: %v", err)
	}
	return tr
}

// TestCursorMatchesTrace drives a cursor through monotone, locally
// jittered, and fully random query streams and checks every answer
// against the plain binary-search methods.
func TestCursorMatchesTrace(t *testing.T) {
	tr := cursorTestTrace(t)
	rng := rand.New(rand.NewSource(99))

	streams := map[string]func(i int) int64{
		"monotone": func(i int) int64 { return int64(i) % (tr.End - tr.Start) },
		"jittered": func(i int) int64 {
			m := int64(i)%(tr.End-tr.Start-10) + rng.Int63n(10)
			return m
		},
		"random": func(int) int64 { return rng.Int63n(tr.End - tr.Start) },
	}
	for name, next := range streams {
		c := NewCursor(tr)
		for i := 0; i < 5000; i++ {
			m := next(i)
			if got, want := c.PriceAt(m), tr.PriceAt(m); got != want {
				t.Fatalf("%s: PriceAt(%d) = %d, want %d", name, m, got, want)
			}
			if got, want := c.AgeAt(m), tr.AgeAt(m); got != want {
				t.Fatalf("%s: AgeAt(%d) = %d, want %d", name, m, got, want)
			}
		}
	}
}

func TestCursorPanicsOutsideSpan(t *testing.T) {
	tr := cursorTestTrace(t)
	c := NewCursor(tr)
	for _, m := range []int64{tr.Start - 1, tr.End, tr.End + 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PriceAt(%d): no panic", m)
				}
			}()
			c.PriceAt(m)
		}()
	}
}

// TestAppendPointsMatchesWindow pins the buffer-reusing API to the
// allocating one across random windows, including empty windows and
// reuse of a shared buffer.
func TestAppendPointsMatchesWindow(t *testing.T) {
	tr := cursorTestTrace(t)
	rng := rand.New(rand.NewSource(3))
	var buf []PricePoint
	for i := 0; i < 500; i++ {
		lo := rng.Int63n(tr.End - tr.Start)
		hi := lo + rng.Int63n(tr.End-lo)
		w := tr.Window(lo, hi)
		buf = tr.AppendPoints(buf[:0], lo, hi)
		if len(buf) != len(w.Points) {
			t.Fatalf("window [%d,%d): AppendPoints %d points, Window %d", lo, hi, len(buf), len(w.Points))
		}
		for j := range buf {
			if buf[j] != w.Points[j] {
				t.Fatalf("window [%d,%d): point %d differs: %+v vs %+v", lo, hi, j, buf[j], w.Points[j])
			}
		}
	}
}
