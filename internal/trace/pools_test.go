package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/market"
)

const poolWeek = 7 * 24 * 60

func poolGenConfig(types ...market.InstanceType) GenConfig {
	return GenConfig{
		Seed:  2014,
		Type:  market.M1Small,
		Zones: []string{"us-east-1a", "us-west-2b"},
		Start: 0,
		End:   poolWeek,
		Types: types,
	}
}

// TestGenerateMultiTypeDeterministic pins the correlated multi-type
// generator: same config, same bytes; and the base type's column is
// byte-identical with and without extra types.
func TestGenerateMultiTypeDeterministic(t *testing.T) {
	a, err := Generate(poolGenConfig(market.M1Medium, market.C3Large))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(poolGenConfig(market.M1Medium, market.C3Large))
	if err != nil {
		t.Fatal(err)
	}
	var abuf, bbuf bytes.Buffer
	if err := a.WriteCSV(&abuf); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteCSV(&bbuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(abuf.Bytes(), bbuf.Bytes()) {
		t.Fatal("two generations of the same multi-type config differ")
	}

	base, err := Generate(poolGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, zone := range base.Zones() {
		want, got := base.ByZone[zone], a.ByZone[zone]
		if got == nil {
			t.Fatalf("zone %s missing from multi-type set", zone)
		}
		if len(want.Points) != len(got.Points) {
			t.Fatalf("zone %s: base column %d points with types, %d without", zone, len(got.Points), len(want.Points))
		}
		for i := range want.Points {
			if want.Points[i] != got.Points[i] {
				t.Fatalf("zone %s point %d: %v with types, %v without — base column not byte-identical", zone, i, got.Points[i], want.Points[i])
			}
		}
	}
}

// TestGenerateMultiTypeCorrelated checks the shared-demand-shock
// construction: sibling columns change price at exactly the base
// column's change minutes, and zone spikes hit every type at once.
func TestGenerateMultiTypeCorrelated(t *testing.T) {
	set, err := Generate(poolGenConfig(market.C3Large))
	if err != nil {
		t.Fatal(err)
	}
	for _, zone := range poolGenConfig().Zones {
		baseTr := set.ByZone[zone]
		sibKey := market.PoolKey(zone, market.C3Large, market.M1Small)
		sibTr := set.ByZone[sibKey]
		if sibTr == nil {
			t.Fatalf("pool %s missing", sibKey)
		}
		if sibTr.Zone != zone || sibTr.Type != market.C3Large {
			t.Fatalf("pool %s trace labeled %s/%s", sibKey, sibTr.Zone, sibTr.Type)
		}
		if len(sibTr.Points) != len(baseTr.Points) {
			t.Fatalf("pool %s: %d points, base %d — walks not shared", sibKey, len(sibTr.Points), len(baseTr.Points))
		}
		baseModel, err := ZoneModelFor(zone, market.M1Small, 2014)
		if err != nil {
			t.Fatal(err)
		}
		sibModel, err := ZoneModelFor(zone, market.C3Large, 2014)
		if err != nil {
			t.Fatal(err)
		}
		baseSpike := baseModel.Levels[len(baseModel.Levels)-1]
		sibSpike := sibModel.Levels[len(sibModel.Levels)-1]
		for i := range baseTr.Points {
			if sibTr.Points[i].Minute != baseTr.Points[i].Minute {
				t.Fatalf("pool %s point %d at minute %d, base at %d", sibKey, i, sibTr.Points[i].Minute, baseTr.Points[i].Minute)
			}
			if (baseTr.Points[i].Price == baseSpike) != (sibTr.Points[i].Price == sibSpike) {
				t.Fatalf("pool %s point %d: spike state differs from base (shared shock broken)", sibKey, i)
			}
		}
	}
}

// TestCSVPoolsRoundTrip writes a multi-type set and reads it back via
// the pool reader.
func TestCSVPoolsRoundTrip(t *testing.T) {
	set, err := Generate(poolGenConfig(market.M1Medium))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := set.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSVPools(bytes.NewReader(buf.Bytes()), market.M1Small, []market.InstanceType{market.M1Medium}, 0, poolWeek)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != set.Fingerprint() {
		t.Fatal("pool CSV round trip changed the set fingerprint")
	}
	// The typed rows are invisible to a single-type Strict read…
	if _, err := ReadCSV(bytes.NewReader(buf.Bytes()), market.M1Small, 0, poolWeek); err == nil {
		t.Fatal("strict single-type read accepted typed rows")
	}
	// …and to the pool reader when the type is not requested.
	if _, err := ReadCSVPools(bytes.NewReader(buf.Bytes()), market.M1Small, nil, 0, poolWeek); err == nil {
		t.Fatal("pool read accepted a type outside the requested set")
	}
}

// TestCSVPoolsOptionalTypeColumn accepts the 3-field layout, mapping
// rows to the base type.
func TestCSVPoolsOptionalTypeColumn(t *testing.T) {
	csv := "zone,minute,price_usd\nus-east-1a,0,0.01\nus-east-1a,10,0.012\n"
	set, err := ReadCSVPools(strings.NewReader(csv), market.M1Small, nil, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	tr := set.ByZone["us-east-1a"]
	if tr == nil || tr.Type != market.M1Small || len(tr.Points) != 2 {
		t.Fatalf("3-field read = %+v", tr)
	}
}

// TestJSONPoolsRoundTrip checks the omitempty type field: base traces
// serialize exactly as before, typed pools round-trip.
func TestJSONPoolsRoundTrip(t *testing.T) {
	set, err := Generate(poolGenConfig(market.R3Large))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := set.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != set.Fingerprint() {
		t.Fatal("pool JSON round trip changed the set fingerprint")
	}
	// Single-type JSON output must not mention types per trace.
	single, err := Generate(poolGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := single.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(buf.Bytes(), []byte(`"type"`)); n != 1 { // the set-level field only
		t.Fatalf("single-type JSON mentions \"type\" %d times, want 1", n)
	}
}

// TestAddPoolDuplicate pins AddPool's duplicate rejection.
func TestAddPoolDuplicate(t *testing.T) {
	set := NewSet(market.M1Small, 0, 10)
	tr := &Trace{Zone: "us-east-1a", Type: market.C3Large, Start: 0, End: 10,
		Points: []PricePoint{{Minute: 0, Price: 100}}}
	if err := set.AddPool(tr); err != nil {
		t.Fatal(err)
	}
	if err := set.AddPool(tr); err == nil || !strings.Contains(err.Error(), "duplicate pool") {
		t.Fatalf("duplicate AddPool error = %v", err)
	}
}
