package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/market"
)

// FuzzReadCSV pins two properties of the CSV reader under arbitrary
// input: it never panics, and the two modes stay coherent — whatever
// Strict accepts, Lenient accepts identically with an empty quarantine
// report. The seed corpus covers the interesting shapes by hand: a
// valid generated trace, truncated rows, NaN and non-positive prices,
// out-of-order and duplicate minutes, a dangling quote, emptiness.
func FuzzReadCSV(f *testing.F) {
	s, err := Generate(GenConfig{
		Seed: 9, Type: market.M1Small,
		Zones: []string{"us-east-1a", "eu-west-1b"},
		Start: 0, End: 6 * 60,
	})
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := s.WriteCSV(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.String())
	f.Add(csvHeader)
	f.Add(csvHeader + "us-east-1a,m1.small,0,0.01\nus-east-1a,m1.small,5\n")
	f.Add(csvHeader + "us-east-1a,m1.small,0,NaN\n")
	f.Add(csvHeader + "us-east-1a,m1.small,0,-1e300\n")
	f.Add(csvHeader + "us-east-1a,m1.small,10,0.01\nus-east-1a,m1.small,5,0.01\n")
	f.Add(csvHeader + "us-east-1a,m1.small,0,0.01\nus-east-1a,m1.small,0,0.01\n")
	f.Add(csvHeader + `"unclosed quote`)
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		strictSet, _, strictErr := ReadCSVMode(strings.NewReader(input), market.M1Small, 0, 6*60, Strict)
		lenSet, rep, lenErr := ReadCSVMode(strings.NewReader(input), market.M1Small, 0, 6*60, Lenient)
		if strictErr == nil {
			if strictSet == nil {
				t.Fatal("strict success returned a nil set")
			}
			if lenErr != nil {
				t.Fatalf("strict accepted what lenient rejected: %v", lenErr)
			}
			if rep.Quarantined != 0 {
				t.Fatalf("strictly-clean input quarantined %d rows: %+v", rep.Quarantined, rep.Reasons)
			}
			setsEqual(t, strictSet, lenSet)
		}
		if lenErr == nil && lenSet == nil {
			t.Fatal("lenient success returned a nil set")
		}
	})
}

// FuzzReadJSON is the JSON-side no-panic pin with the same mode
// coherence property.
func FuzzReadJSON(f *testing.F) {
	s, err := Generate(GenConfig{
		Seed: 9, Type: market.M1Small,
		Zones: []string{"us-east-1a"},
		Start: 0, End: 6 * 60,
	})
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := s.WriteJSON(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.String())
	f.Add(`{"type":"m1.small","start":0,"end":100,"traces":[{"zone":"z","points":[{"minute":0,"price_micro_usd":-1}]}]}`)
	f.Add(`{"type":"m1.small","start":0,"end":100,"traces":[{"zone":"z","points":[{"minute":5,"price_micro_usd":1},{"minute":5,"price_micro_usd":1}]}]}`)
	f.Add(`{nope`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, input string) {
		strictSet, _, strictErr := ReadJSONMode(strings.NewReader(input), Strict)
		lenSet, rep, lenErr := ReadJSONMode(strings.NewReader(input), Lenient)
		if strictErr == nil {
			if strictSet == nil {
				t.Fatal("strict success returned a nil set")
			}
			if lenErr != nil {
				t.Fatalf("strict accepted what lenient rejected: %v", lenErr)
			}
			if rep.Quarantined != 0 {
				t.Fatalf("strictly-clean input quarantined %d points: %+v", rep.Quarantined, rep.Reasons)
			}
			setsEqual(t, strictSet, lenSet)
		}
	})
}
