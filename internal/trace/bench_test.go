package trace

import (
	"testing"

	"repro/internal/market"
	"repro/internal/stats"
)

func benchZoneTrace(b *testing.B, weeks int64) *Trace {
	b.Helper()
	m, err := ZoneModelFor("us-east-1a", market.M1Small, 1)
	if err != nil {
		b.Fatal(err)
	}
	return m.Generate(stats.NewRNG(1), 0, weeks*week)
}

func BenchmarkGenerateZoneWeek(b *testing.B) {
	m, err := ZoneModelFor("us-east-1a", market.M1Small, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Generate(stats.NewRNG(uint64(i)), 0, week)
	}
}

func BenchmarkPriceAt(b *testing.B) {
	tr := benchZoneTrace(b, 13)
	span := tr.End - tr.Start
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.PriceAt(tr.Start + int64(i)%span)
	}
}

func BenchmarkAgeAt(b *testing.B) {
	tr := benchZoneTrace(b, 13)
	span := tr.End - tr.Start
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.AgeAt(tr.Start + int64(i)%span)
	}
}

func BenchmarkWindowDay(b *testing.B) {
	tr := benchZoneTrace(b, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := tr.Start + int64(i)%(tr.End-tr.Start-24*60)
		tr.Window(lo, lo+24*60)
	}
}

func BenchmarkSojourns(b *testing.B) {
	tr := benchZoneTrace(b, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Sojourns()
	}
}
