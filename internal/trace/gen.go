package trace

import (
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/market"
	"repro/internal/stats"
)

// Tick is the spot-price quantum: $0.0001, the EC2 price granularity.
const Tick market.Money = 100

// ZoneModel is the ground-truth semi-Markov price process of one
// (zone, instance type) pair. The synthetic generator draws traces from
// it; the estimator under test (internal/smc) never sees these
// parameters and must recover the dynamics from sampled history, exactly
// as the paper's estimator learns from AWS price history.
type ZoneModel struct {
	Zone     string
	Type     market.InstanceType
	OnDemand market.Money

	// Levels are the distinct prices the process visits, ascending.
	// The last level is a "spike" above the on-demand price.
	Levels []market.Money
	// Trans[i] are the transition weights out of level i (diagonal
	// zero); rows are normalized when sampling.
	Trans [][]float64
	// SojournMu/SojournSigma are per-level lognormal parameters for the
	// sojourn time in minutes.
	SojournMu    []float64
	SojournSigma []float64
}

// hashZone derives a stable 64-bit identity for a (zone, type) pair.
func hashZone(zone string, it market.InstanceType) uint64 {
	h := fnv.New64a()
	h.Write([]byte(zone))
	h.Write([]byte{'/'})
	h.Write([]byte(it))
	return h.Sum64()
}

// roundTick rounds a price to the EC2 $0.0001 granularity.
func roundTick(m market.Money) market.Money {
	return (m + Tick/2) / Tick * Tick
}

// ZoneModelFor builds the calibrated ground-truth model for a zone. The
// per-zone personality (base price fraction, volatility, spike rate) is
// derived deterministically from the seed and the zone identity, so every
// zone behaves differently but reproducibly. Calibration targets the
// price shapes the paper reports: m1.small spot around $0.0071–$0.0117
// against on-demand $0.044–$0.061, with occasional spikes above
// on-demand (see DESIGN.md §4).
func ZoneModelFor(zone string, it market.InstanceType, seed uint64) (*ZoneModel, error) {
	od, err := market.OnDemandPrice(zone, it)
	if err != nil {
		return nil, err
	}
	r := stats.NewRNG(seed ^ hashZone(zone, it))

	baseFrac := 0.13 + 0.09*r.Float64()               // spot base as fraction of on-demand
	escalation := 0.03 + 0.15*r.Float64()             // upward pressure above the floor band
	spikiness := 0.001 + 0.03*r.Float64()*r.Float64() // spike entry probability
	spikeMult := 1.25 + r.Float64()                   // spike level as multiple of on-demand
	sojournBase := 25 + 50*r.Float64()                // mean sojourn at the lowest level, minutes

	base := od.Scale(baseFrac)
	ratios := []float64{1.0, 1.14, 1.30, 1.55, 1.90}
	levels := make([]market.Money, 0, len(ratios)+1)
	for _, f := range ratios {
		p := roundTick(base.Scale(f))
		if len(levels) > 0 && p <= levels[len(levels)-1] {
			p = levels[len(levels)-1] + Tick
		}
		levels = append(levels, p)
	}
	spike := roundTick(od.Scale(spikeMult))
	if spike <= levels[len(levels)-1] {
		spike = levels[len(levels)-1] + Tick
	}
	levels = append(levels, spike)

	n := len(levels)
	spikeIdx := n - 1
	trans := make([][]float64, n)
	for i := range trans {
		trans[i] = make([]float64, n)
	}
	// The 2014 market changed price many times per hour but almost
	// always oscillated within a narrow floor band, with occasional
	// escalations and rare spikes above on-demand. Model: the two
	// cheapest levels ping-pong (L0 can only go up, L1 strongly
	// mean-reverts down), and each further rung is reached with the
	// per-zone escalation pressure, decaying with height.
	for i := 0; i < spikeIdx; i++ {
		up := 1.0
		if i >= 1 {
			up = escalation * pow(0.6, i-1)
		}
		if i+1 < spikeIdx {
			trans[i][i+1] = up
		}
		if i-1 >= 0 {
			trans[i][i-1] = 1.0
		}
		if i+2 < spikeIdx {
			trans[i][i+2] = 0.1 * up
		}
		if i-2 >= 0 {
			trans[i][i-2] = 0.25
		}
		// Spikes enter from the upper half of the normal ladder.
		switch {
		case i >= spikeIdx-2:
			trans[i][spikeIdx] = spikiness
		case i == spikeIdx-3:
			trans[i][spikeIdx] = spikiness * 0.3
		}
	}
	// A spike decays back to the cheap end of the ladder.
	trans[spikeIdx][0] = 1.0
	trans[spikeIdx][1] = 1.0
	if spikeIdx > 2 {
		trans[spikeIdx][2] = 0.5
	}

	mu := make([]float64, n)
	sigma := make([]float64, n)
	for i := 0; i < n; i++ {
		mean := sojournBase * pow(0.75, i)
		if i == spikeIdx {
			mean = 3 + 10*r.Float64() // spikes are short
		}
		const s = 0.7
		sigma[i] = s
		mu[i] = lnMean(mean, s)
	}

	return &ZoneModel{
		Zone:         zone,
		Type:         it,
		OnDemand:     od,
		Levels:       levels,
		Trans:        trans,
		SojournMu:    mu,
		SojournSigma: sigma,
	}, nil
}

func pow(b float64, k int) float64 {
	p := 1.0
	for i := 0; i < k; i++ {
		p *= b
	}
	return p
}

// lnMean returns the lognormal mu yielding the requested arithmetic mean
// for the given sigma: E[exp(N(mu, sigma))] = exp(mu + sigma^2/2).
func lnMean(mean, sigma float64) float64 {
	return math.Log(mean) - sigma*sigma/2
}

// walkStep is one visit of the level walk underlying a generated
// trace: the process sits at Levels[level] from minute until the next
// step.
type walkStep struct {
	minute int64
	level  int
}

// walk draws the level walk of the semi-Markov process over
// [start, end) — the zone's demand shock, independent of the price
// ladder it is rendered on. Correlated sibling types replay the same
// walk on their own ladders (see Generate).
func (m *ZoneModel) walk(r *stats.RNG, start, end int64) []walkStep {
	if end <= start {
		return nil
	}
	cats := make([]*stats.Categorical, len(m.Trans))
	for i, row := range m.Trans {
		cats[i] = stats.NewCategorical(row)
	}
	// Start in one of the two cheapest levels; the process spends most
	// of its time there, mirroring real spot floors.
	level := r.Intn(2)
	now := start
	var steps []walkStep
	for now < end {
		steps = append(steps, walkStep{minute: now, level: level})
		d := int64(m.sampleSojourn(r, level))
		if d < 1 {
			d = 1
		}
		now += d
		level = cats[level].Sample(r)
	}
	return steps
}

// Generate draws one trace from the ground-truth process over
// [start, end). The caller supplies the RNG so multiple draws from the
// same model are independent.
func (m *ZoneModel) Generate(r *stats.RNG, start, end int64) *Trace {
	t := &Trace{Zone: m.Zone, Type: m.Type, Start: start, End: end}
	for _, s := range m.walk(r, start, end) {
		t.Points = append(t.Points, PricePoint{Minute: s.minute, Price: m.Levels[s.level]})
	}
	return t
}

// renderWalk renders a sibling type's trace from the zone's shared
// level walk: the same change minutes and base levels (the demand
// shock), the sibling's own price ladder, plus a deterministic
// per-type level offset drawn from the sibling's RNG so the columns
// are correlated but not copies. Spikes are shared — when the zone
// spikes, every type in it spikes.
func (m *ZoneModel) renderWalk(r *stats.RNG, steps []walkStep, start, end int64) *Trace {
	t := &Trace{Zone: m.Zone, Type: m.Type, Start: start, End: end}
	spikeIdx := len(m.Levels) - 1
	for _, s := range steps {
		lvl := s.level
		if lvl < spikeIdx {
			switch u := r.Float64(); {
			case u < 0.12:
				lvl++
			case u < 0.24:
				lvl--
			}
			if lvl < 0 {
				lvl = 0
			}
			if lvl >= spikeIdx {
				lvl = spikeIdx - 1
			}
		}
		t.Points = append(t.Points, PricePoint{Minute: s.minute, Price: m.Levels[lvl]})
	}
	return t
}

func (m *ZoneModel) sampleSojourn(r *stats.RNG, level int) float64 {
	return r.LogNormFloat64(m.SojournMu[level], m.SojournSigma[level])
}

// GenConfig parameterizes synthetic trace-set generation.
type GenConfig struct {
	Seed  uint64
	Type  market.InstanceType
	Zones []string
	Start int64 // inclusive, minutes
	End   int64 // exclusive, minutes
	// Types lists additional instance types to generate per zone, as
	// correlated pool columns: each sibling type replays the zone's
	// base-type level walk (the shared demand shock) on its own price
	// ladder with a deterministic per-type offset. The base Type's
	// column is byte-identical with or without Types. Entries equal to
	// Type or repeated are ignored.
	Types []market.InstanceType
}

// Generate produces a trace set with one independent trace per zone —
// plus, when cfg.Types is set, one correlated trace per (zone, extra
// type) pool keyed "zone/type". Traces are reproducible: the same
// config yields the same set, and each zone's traces are independent of
// the order or presence of other zones.
func Generate(cfg GenConfig) (*Set, error) {
	if cfg.End < cfg.Start {
		return nil, fmt.Errorf("trace: generate span [%d, %d) invalid", cfg.Start, cfg.End)
	}
	var extras []market.InstanceType
	seen := map[market.InstanceType]bool{cfg.Type: true}
	for _, it := range cfg.Types {
		if !seen[it] {
			seen[it] = true
			extras = append(extras, it)
		}
	}
	set := NewSet(cfg.Type, cfg.Start, cfg.End)
	for _, zone := range cfg.Zones {
		model, err := ZoneModelFor(zone, cfg.Type, cfg.Seed)
		if err != nil {
			return nil, err
		}
		r := stats.NewRNG(cfg.Seed ^ hashZone(zone, cfg.Type) ^ 0xabcdef123456)
		steps := model.walk(r, cfg.Start, cfg.End)
		tr := &Trace{Zone: model.Zone, Type: model.Type, Start: cfg.Start, End: cfg.End}
		for _, s := range steps {
			tr.Points = append(tr.Points, PricePoint{Minute: s.minute, Price: model.Levels[s.level]})
		}
		if err := set.Add(tr); err != nil {
			return nil, err
		}
		for _, it := range extras {
			sib, err := ZoneModelFor(zone, it, cfg.Seed)
			if err != nil {
				return nil, err
			}
			rs := stats.NewRNG(cfg.Seed ^ hashZone(zone, it) ^ 0xabcdef123456)
			if err := set.AddPool(sib.renderWalk(rs, steps, cfg.Start, cfg.End)); err != nil {
				return nil, err
			}
		}
	}
	return set, nil
}
