package trace

import "repro/internal/market"

// Cursor memoizes the last point index looked up on a trace, so a
// monotone (or nearly monotone) stream of PriceAt/AgeAt queries — the
// shape every simulation clock produces — costs an O(1) amortized
// bounded scan instead of a fresh binary search per call. Queries that
// jump arbitrarily fall back to binary search, so a Cursor is never
// worse than the plain trace methods, only cheaper on locality.
//
// A Cursor is not goroutine-safe; give each worker its own.
type Cursor struct {
	t   *Trace
	idx int // index of the point covering the last queried minute
}

// NewCursor returns a cursor over t positioned at its first point.
func NewCursor(t *Trace) *Cursor {
	return &Cursor{t: t}
}

// Trace returns the underlying trace.
func (c *Cursor) Trace() *Trace { return c.t }

// maxScan bounds the linear walk from the memoized index before the
// cursor gives up and binary-searches. Spot price changes are minutes
// to hours apart, so consecutive simulation minutes almost always land
// within a step or two; 32 covers bursts of changes without letting a
// long jump degrade to a linear scan.
const maxScan = 32

// IndexAt returns the index of the point covering minute, advancing or
// rewinding the memoized position. It panics outside [Start, End), like
// Trace.PriceAt.
func (c *Cursor) IndexAt(minute int64) int {
	t := c.t
	if minute < t.Start || minute >= t.End {
		return t.indexAt(minute) // panics with the canonical message
	}
	pts := t.Points
	i := c.idx
	if i < 0 || i >= len(pts) {
		i = 0
	}
	if pts[i].Minute <= minute {
		// Walk forward while the next point still starts at or
		// before minute.
		for steps := 0; i+1 < len(pts) && pts[i+1].Minute <= minute; steps++ {
			if steps == maxScan {
				i = t.indexAt(minute)
				break
			}
			i++
		}
	} else {
		// Behind the memoized point: short backward walk. minute >=
		// Start guarantees pts[0] covers it, so i stays in range.
		for steps := 0; pts[i].Minute > minute; steps++ {
			if steps == maxScan {
				i = t.indexAt(minute)
				break
			}
			i--
		}
	}
	c.idx = i
	return i
}

// PriceAt returns the price in effect at minute, memoizing the lookup
// position. Panics outside [Start, End).
func (c *Cursor) PriceAt(minute int64) market.Money {
	return c.t.Points[c.IndexAt(minute)].Price
}

// AgeAt returns how long the price at minute has held (merging
// equal-price points), memoizing the lookup position. Panics outside
// [Start, End).
func (c *Cursor) AgeAt(minute int64) int64 {
	return c.t.ageFrom(c.IndexAt(minute), minute)
}
