package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"repro/internal/market"
)

// ReadMode selects how the trace readers treat malformed input rows.
type ReadMode int

const (
	// Strict rejects the first malformed row with an error naming its
	// line. The default for every command-line tool.
	Strict ReadMode = iota
	// Lenient quarantines malformed rows — skips them and counts each
	// by reason in the returned ReadReport — and keeps whatever parses.
	// A zone whose rows were all quarantined is dropped rather than
	// failing set validation.
	Lenient
)

// Quarantine reasons reported by lenient reads.
const (
	ReasonTruncatedRow     = "truncated-row"
	ReasonBadMinute        = "bad-minute"
	ReasonBadPrice         = "bad-price"
	ReasonNaNPrice         = "nan-price"
	ReasonNonPositivePrice = "non-positive-price"
	ReasonDuplicateMinute  = "duplicate-minute"
	ReasonOutOfOrder       = "out-of-order-minute"
	ReasonTypeMismatch     = "type-mismatch"
	ReasonZoneDropped      = "zone-dropped"
)

// ReadReport accounts the rows a lenient read quarantined, by reason.
// Surface it through the telemetry registry with
// telemetry.RecordQuarantinedRows when the run is instrumented.
type ReadReport struct {
	// Quarantined is the total number of skipped rows (zone drops count
	// once per zone).
	Quarantined int
	// Reasons maps a Reason* constant to its occurrence count.
	Reasons map[string]int
}

func (r *ReadReport) add(reason string) {
	if r.Reasons == nil {
		r.Reasons = make(map[string]int)
	}
	r.Quarantined++
	r.Reasons[reason]++
}

// Add counts one quarantined row under a Reason* constant, for readers
// living outside this package (the colbin binary reader).
func (r *ReadReport) Add(reason string) { r.add(reason) }

// checkPrice classifies a price in dollars; ok rows return "".
func checkPrice(dollars float64) string {
	if math.IsNaN(dollars) || math.IsInf(dollars, 0) {
		return ReasonNaNPrice
	}
	if dollars <= 0 {
		return ReasonNonPositivePrice
	}
	return ""
}

// checkOrder classifies a minute against the zone's previous one;
// ok rows return "". prev is nil for a zone's first row.
func checkOrder(prev *int64, minute int64) string {
	if prev == nil {
		return ""
	}
	if minute == *prev {
		return ReasonDuplicateMinute
	}
	if minute < *prev {
		return ReasonOutOfOrder
	}
	return ""
}

// CSV layout: header "zone,type,minute,price_usd" followed by one row per
// price point, grouped by zone in ascending minute order. Typed pools
// write their real zone and type per row; ReadCSVPools reconstructs
// the pool keys from them.

// WriteCSV serializes the set in the CSV layout above.
func (s *Set) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"zone", "type", "minute", "price_usd"}); err != nil {
		return err
	}
	for _, zone := range s.Zones() {
		t := s.ByZone[zone]
		for _, p := range t.Points {
			row := []string{
				t.Zone,
				string(t.Type),
				strconv.FormatInt(p.Minute, 10),
				strconv.FormatFloat(p.Price.Dollars(), 'f', -1, 64),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace set written by WriteCSV in Strict mode. Span
// boundaries are supplied by the caller because the CSV stores only
// change points.
func ReadCSV(r io.Reader, it market.InstanceType, start, end int64) (*Set, error) {
	set, _, err := ReadCSVMode(r, it, start, end, Strict)
	return set, err
}

// ReadCSVMode parses a trace set written by WriteCSV. Rows must arrive
// in ascending minute order per zone; prices must be positive finite
// numbers. Strict mode rejects the first violation with its line
// number; Lenient mode quarantines violating rows and reports them.
func ReadCSVMode(r io.Reader, it market.InstanceType, start, end int64, mode ReadMode) (*Set, *ReadReport, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // field count is checked per row below
	header, err := cr.Read()
	if err == io.EOF {
		return nil, nil, fmt.Errorf("trace: empty CSV")
	}
	if err != nil {
		return nil, nil, fmt.Errorf("trace: reading CSV: %w", err)
	}
	if len(header) != 4 || header[0] != "zone" || header[2] != "minute" {
		return nil, nil, fmt.Errorf("trace: unexpected CSV header %v", header)
	}
	report := &ReadReport{}
	byZone := map[string][]PricePoint{}
	lastMinute := map[string]*int64{}
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			if mode == Lenient {
				report.add(ReasonTruncatedRow)
				continue
			}
			return nil, nil, fmt.Errorf("trace: reading CSV: %w", err)
		}
		quarantine := func(reason, format string, args ...any) error {
			if mode == Lenient {
				report.add(reason)
				return nil
			}
			return fmt.Errorf("trace: line %d: %s", line, fmt.Sprintf(format, args...))
		}
		if len(row) != 4 {
			if err := quarantine(ReasonTruncatedRow, "%d fields, want 4", len(row)); err != nil {
				return nil, nil, err
			}
			continue
		}
		if market.InstanceType(row[1]) != it {
			if err := quarantine(ReasonTypeMismatch, "type %q, want %q", row[1], it); err != nil {
				return nil, nil, err
			}
			continue
		}
		minute, perr := strconv.ParseInt(row[2], 10, 64)
		if perr != nil {
			if err := quarantine(ReasonBadMinute, "minute: %v", perr); err != nil {
				return nil, nil, err
			}
			continue
		}
		dollars, perr := strconv.ParseFloat(row[3], 64)
		if perr != nil {
			if err := quarantine(ReasonBadPrice, "price: %v", perr); err != nil {
				return nil, nil, err
			}
			continue
		}
		if reason := checkPrice(dollars); reason != "" {
			if err := quarantine(reason, "price %v is not a positive finite number", row[3]); err != nil {
				return nil, nil, err
			}
			continue
		}
		zone := row[0]
		if reason := checkOrder(lastMinute[zone], minute); reason != "" {
			if err := quarantine(reason, "zone %s minute %d not after %d", zone, minute, *lastMinute[zone]); err != nil {
				return nil, nil, err
			}
			continue
		}
		m := minute
		lastMinute[zone] = &m
		byZone[zone] = append(byZone[zone], PricePoint{Minute: minute, Price: market.FromDollars(dollars)})
	}
	set, err := assembleSet(it, start, end, byZone, mode, report)
	if err != nil {
		return nil, nil, err
	}
	return set, report, nil
}

// assembleSet validates per-pool points into a Set; map keys are pool
// keys (bare zone names for the base type). In Lenient mode a pool that
// fails validation (for example, every row quarantined, or a first
// point past the span start) is dropped and counted rather than failing
// the read; a set left with no pools at all is still an error.
func assembleSet(it market.InstanceType, start, end int64, byZone map[string][]PricePoint, mode ReadMode, report *ReadReport) (*Set, error) {
	set := NewSet(it, start, end)
	keys := make([]string, 0, len(byZone))
	for z := range byZone {
		keys = append(keys, z)
	}
	sort.Strings(keys)
	for _, key := range keys {
		zone, typ := market.ParsePool(key, it)
		t := &Trace{Zone: zone, Type: typ, Start: start, End: end, Points: byZone[key]}
		if err := set.addKeyed(key, t); err != nil {
			if mode == Lenient {
				report.add(ReasonZoneDropped)
				continue
			}
			return nil, err
		}
	}
	if len(set.ByZone) == 0 {
		return nil, fmt.Errorf("trace: no usable zones")
	}
	return set, nil
}

// ReadCSVPools parses a heterogeneous pool trace set in Strict mode;
// see ReadCSVPoolsMode.
func ReadCSVPools(r io.Reader, base market.InstanceType, types []market.InstanceType, start, end int64) (*Set, error) {
	set, _, err := ReadCSVPoolsMode(r, base, types, start, end, Strict)
	return set, err
}

// ReadCSVPoolsMode parses a trace set that may span several instance
// types into pool-keyed traces. The type column is optional: 3-field
// rows (zone, minute, price) map to the base type, as do 4-field rows
// naming it; 4-field rows naming another type in types become
// "zone/type" pools. Rows naming a type outside {base} ∪ types are
// type-mismatch violations. Row discipline and Strict/Lenient handling
// match ReadCSVMode, per pool.
func ReadCSVPoolsMode(r io.Reader, base market.InstanceType, types []market.InstanceType, start, end int64, mode ReadMode) (*Set, *ReadReport, error) {
	allowed := map[market.InstanceType]bool{base: true}
	for _, it := range types {
		allowed[it] = true
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // field count is checked per row below
	header, err := cr.Read()
	if err == io.EOF {
		return nil, nil, fmt.Errorf("trace: empty CSV")
	}
	if err != nil {
		return nil, nil, fmt.Errorf("trace: reading CSV: %w", err)
	}
	switch {
	case len(header) == 4 && header[0] == "zone" && header[2] == "minute":
	case len(header) == 3 && header[0] == "zone" && header[1] == "minute":
	default:
		return nil, nil, fmt.Errorf("trace: unexpected CSV header %v", header)
	}
	report := &ReadReport{}
	byKey := map[string][]PricePoint{}
	lastMinute := map[string]*int64{}
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			if mode == Lenient {
				report.add(ReasonTruncatedRow)
				continue
			}
			return nil, nil, fmt.Errorf("trace: reading CSV: %w", err)
		}
		quarantine := func(reason, format string, args ...any) error {
			if mode == Lenient {
				report.add(reason)
				return nil
			}
			return fmt.Errorf("trace: line %d: %s", line, fmt.Sprintf(format, args...))
		}
		if len(row) != 3 && len(row) != 4 {
			if err := quarantine(ReasonTruncatedRow, "%d fields, want 3 or 4", len(row)); err != nil {
				return nil, nil, err
			}
			continue
		}
		typ := base
		minuteCol, priceCol := 1, 2
		if len(row) == 4 {
			typ = market.InstanceType(row[1])
			minuteCol, priceCol = 2, 3
			if !allowed[typ] {
				if err := quarantine(ReasonTypeMismatch, "type %q not among requested types", row[1]); err != nil {
					return nil, nil, err
				}
				continue
			}
		}
		minute, perr := strconv.ParseInt(row[minuteCol], 10, 64)
		if perr != nil {
			if err := quarantine(ReasonBadMinute, "minute: %v", perr); err != nil {
				return nil, nil, err
			}
			continue
		}
		dollars, perr := strconv.ParseFloat(row[priceCol], 64)
		if perr != nil {
			if err := quarantine(ReasonBadPrice, "price: %v", perr); err != nil {
				return nil, nil, err
			}
			continue
		}
		if reason := checkPrice(dollars); reason != "" {
			if err := quarantine(reason, "price %v is not a positive finite number", row[priceCol]); err != nil {
				return nil, nil, err
			}
			continue
		}
		key := market.PoolKey(row[0], typ, base)
		if reason := checkOrder(lastMinute[key], minute); reason != "" {
			if err := quarantine(reason, "pool %s minute %d not after %d", key, minute, *lastMinute[key]); err != nil {
				return nil, nil, err
			}
			continue
		}
		m := minute
		lastMinute[key] = &m
		byKey[key] = append(byKey[key], PricePoint{Minute: minute, Price: market.FromDollars(dollars)})
	}
	set, err := assembleSet(base, start, end, byKey, mode, report)
	if err != nil {
		return nil, nil, err
	}
	return set, report, nil
}

// jsonSet mirrors Set for encoding/json with explicit field names.
type jsonSet struct {
	Type   market.InstanceType `json:"type"`
	Start  int64               `json:"start"`
	End    int64               `json:"end"`
	Traces []jsonTrace         `json:"traces"`
}

type jsonTrace struct {
	Zone string `json:"zone"`
	// Type is set only for pools of a non-base type; base-type traces
	// omit it, keeping single-type output byte-identical to the
	// pre-pool format.
	Type   market.InstanceType `json:"type,omitempty"`
	Points []jsonPoint         `json:"points"`
}

type jsonPoint struct {
	Minute int64 `json:"minute"`
	Micro  int64 `json:"price_micro_usd"`
}

// WriteJSON serializes the set as JSON with prices in micro-dollars.
func (s *Set) WriteJSON(w io.Writer) error {
	js := jsonSet{Type: s.Type, Start: s.Start, End: s.End}
	for _, zone := range s.Zones() {
		t := s.ByZone[zone]
		jt := jsonTrace{Zone: t.Zone}
		if t.Type != s.Type {
			jt.Type = t.Type
		}
		for _, p := range t.Points {
			jt.Points = append(jt.Points, jsonPoint{Minute: p.Minute, Micro: int64(p.Price)})
		}
		js.Traces = append(js.Traces, jt)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(js)
}

// ReadJSON parses a set written by WriteJSON in Strict mode.
func ReadJSON(r io.Reader) (*Set, error) {
	set, _, err := ReadJSONMode(r, Strict)
	return set, err
}

// ReadJSONMode parses a set written by WriteJSON, enforcing the same
// row discipline as ReadCSVMode: positive prices and strictly
// ascending minutes per zone. Strict mode rejects the first violation,
// naming the zone and point index; Lenient mode quarantines violating
// points and reports them.
func ReadJSONMode(r io.Reader, mode ReadMode) (*Set, *ReadReport, error) {
	var js jsonSet
	if err := json.NewDecoder(r).Decode(&js); err != nil {
		return nil, nil, fmt.Errorf("trace: reading JSON: %w", err)
	}
	report := &ReadReport{}
	byZone := map[string][]PricePoint{}
	for _, jt := range js.Traces {
		if jt.Type != "" {
			if _, terr := market.Shape(jt.Type); terr != nil {
				if mode == Lenient {
					report.add(ReasonTypeMismatch)
					continue
				}
				return nil, nil, fmt.Errorf("trace: zone %s: %v", jt.Zone, terr)
			}
		}
		key := jt.Zone
		if jt.Type != "" {
			key = market.PoolKey(jt.Zone, jt.Type, js.Type)
		}
		var last *int64
		for i, p := range jt.Points {
			quarantine := func(reason, format string, args ...any) error {
				if mode == Lenient {
					report.add(reason)
					return nil
				}
				return fmt.Errorf("trace: zone %s point %d: %s", jt.Zone, i, fmt.Sprintf(format, args...))
			}
			if p.Micro <= 0 {
				if err := quarantine(ReasonNonPositivePrice, "price %d micro-USD not positive", p.Micro); err != nil {
					return nil, nil, err
				}
				continue
			}
			if reason := checkOrder(last, p.Minute); reason != "" {
				if err := quarantine(reason, "minute %d not after %d", p.Minute, *last); err != nil {
					return nil, nil, err
				}
				continue
			}
			m := p.Minute
			last = &m
			byZone[key] = append(byZone[key], PricePoint{Minute: p.Minute, Price: market.Money(p.Micro)})
		}
		if byZone[key] == nil {
			byZone[key] = []PricePoint{} // keep the pool so an all-quarantined one is counted as dropped
		}
	}
	set, err := assembleSet(js.Type, js.Start, js.End, byZone, mode, report)
	if err != nil {
		return nil, nil, err
	}
	return set, report, nil
}
