package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/market"
)

// CSV layout: header "zone,type,minute,price_usd" followed by one row per
// price point, grouped by zone in ascending minute order.

// WriteCSV serializes the set in the CSV layout above.
func (s *Set) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"zone", "type", "minute", "price_usd"}); err != nil {
		return err
	}
	for _, zone := range s.Zones() {
		t := s.ByZone[zone]
		for _, p := range t.Points {
			row := []string{
				zone,
				string(t.Type),
				strconv.FormatInt(p.Minute, 10),
				strconv.FormatFloat(p.Price.Dollars(), 'f', -1, 64),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace set written by WriteCSV. Span boundaries are
// supplied by the caller because the CSV stores only change points.
func ReadCSV(r io.Reader, it market.InstanceType, start, end int64) (*Set, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty CSV")
	}
	header := rows[0]
	if len(header) != 4 || header[0] != "zone" || header[2] != "minute" {
		return nil, fmt.Errorf("trace: unexpected CSV header %v", header)
	}
	byZone := map[string][]PricePoint{}
	for i, row := range rows[1:] {
		if len(row) != 4 {
			return nil, fmt.Errorf("trace: row %d has %d fields", i+2, len(row))
		}
		if market.InstanceType(row[1]) != it {
			return nil, fmt.Errorf("trace: row %d type %q, want %q", i+2, row[1], it)
		}
		minute, err := strconv.ParseInt(row[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d minute: %v", i+2, err)
		}
		dollars, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d price: %v", i+2, err)
		}
		byZone[row[0]] = append(byZone[row[0]], PricePoint{Minute: minute, Price: market.FromDollars(dollars)})
	}
	set := NewSet(it, start, end)
	zones := make([]string, 0, len(byZone))
	for z := range byZone {
		zones = append(zones, z)
	}
	sort.Strings(zones)
	for _, z := range zones {
		pts := byZone[z]
		sort.Slice(pts, func(a, b int) bool { return pts[a].Minute < pts[b].Minute })
		t := &Trace{Zone: z, Type: it, Start: start, End: end, Points: pts}
		if err := set.Add(t); err != nil {
			return nil, err
		}
	}
	return set, nil
}

// jsonSet mirrors Set for encoding/json with explicit field names.
type jsonSet struct {
	Type   market.InstanceType `json:"type"`
	Start  int64               `json:"start"`
	End    int64               `json:"end"`
	Traces []jsonTrace         `json:"traces"`
}

type jsonTrace struct {
	Zone   string      `json:"zone"`
	Points []jsonPoint `json:"points"`
}

type jsonPoint struct {
	Minute int64 `json:"minute"`
	Micro  int64 `json:"price_micro_usd"`
}

// WriteJSON serializes the set as JSON with prices in micro-dollars.
func (s *Set) WriteJSON(w io.Writer) error {
	js := jsonSet{Type: s.Type, Start: s.Start, End: s.End}
	for _, zone := range s.Zones() {
		t := s.ByZone[zone]
		jt := jsonTrace{Zone: zone}
		for _, p := range t.Points {
			jt.Points = append(jt.Points, jsonPoint{Minute: p.Minute, Micro: int64(p.Price)})
		}
		js.Traces = append(js.Traces, jt)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(js)
}

// ReadJSON parses a set written by WriteJSON.
func ReadJSON(r io.Reader) (*Set, error) {
	var js jsonSet
	if err := json.NewDecoder(r).Decode(&js); err != nil {
		return nil, fmt.Errorf("trace: reading JSON: %w", err)
	}
	set := NewSet(js.Type, js.Start, js.End)
	for _, jt := range js.Traces {
		t := &Trace{Zone: jt.Zone, Type: js.Type, Start: js.Start, End: js.End}
		for _, p := range jt.Points {
			t.Points = append(t.Points, PricePoint{Minute: p.Minute, Price: market.Money(p.Micro)})
		}
		if err := set.Add(t); err != nil {
			return nil, err
		}
	}
	return set, nil
}
