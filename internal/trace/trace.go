// Package trace represents spot-price histories: per-availability-zone
// sequences of (minute, price) change points, with piecewise-constant
// interpolation, windowing, and CSV/JSON serialization.
//
// It also provides a calibrated synthetic generator (gen.go) that stands
// in for the proprietary 2014 Amazon EC2 price history the paper trained
// and replayed on; see DESIGN.md §4 for the substitution rationale.
package trace

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/market"
)

// PricePoint is one spot-price change: the price becomes Price at Minute
// and holds until the next point.
type PricePoint struct {
	Minute int64
	Price  market.Money
}

// Trace is the spot-price history of one (zone, instance type) pair over
// [Start, End). Points are sorted by minute; the first point must be at
// Start so the price is defined over the whole span.
type Trace struct {
	Zone   string
	Type   market.InstanceType
	Start  int64 // inclusive
	End    int64 // exclusive
	Points []PricePoint
}

// Validate checks the structural invariants of the trace.
func (t *Trace) Validate() error {
	if t.End < t.Start {
		return fmt.Errorf("trace %s/%s: end %d before start %d", t.Zone, t.Type, t.End, t.Start)
	}
	if len(t.Points) == 0 {
		if t.End > t.Start {
			return fmt.Errorf("trace %s/%s: non-empty span with no points", t.Zone, t.Type)
		}
		return nil
	}
	if t.Points[0].Minute != t.Start {
		return fmt.Errorf("trace %s/%s: first point at %d, want start %d", t.Zone, t.Type, t.Points[0].Minute, t.Start)
	}
	for i := 1; i < len(t.Points); i++ {
		if t.Points[i].Minute <= t.Points[i-1].Minute {
			return fmt.Errorf("trace %s/%s: points not strictly increasing at index %d", t.Zone, t.Type, i)
		}
	}
	if last := t.Points[len(t.Points)-1].Minute; last >= t.End {
		return fmt.Errorf("trace %s/%s: last point %d at or beyond end %d", t.Zone, t.Type, last, t.End)
	}
	for _, p := range t.Points {
		if p.Price < 0 {
			return fmt.Errorf("trace %s/%s: negative price at minute %d", t.Zone, t.Type, p.Minute)
		}
	}
	return nil
}

// indexAt returns the index of the last point at or before minute. It
// panics if the minute is outside [Start, End).
func (t *Trace) indexAt(minute int64) int {
	if minute < t.Start || minute >= t.End {
		panic(fmt.Sprintf("trace: minute %d outside [%d, %d)", minute, t.Start, t.End))
	}
	return sort.Search(len(t.Points), func(i int) bool {
		return t.Points[i].Minute > minute
	}) - 1
}

// PriceAt returns the price in effect at the given minute. It panics if
// the minute is outside [Start, End).
func (t *Trace) PriceAt(minute int64) market.Money {
	return t.Points[t.indexAt(minute)].Price
}

// PriceFunc adapts the trace to the billing engine's PriceFunc.
func (t *Trace) PriceFunc() market.PriceFunc {
	return t.PriceAt
}

// AgeAt returns how many minutes the price in effect at the given
// minute has held, merging adjacent points with equal price. It panics
// outside [Start, End).
func (t *Trace) AgeAt(minute int64) int64 {
	return t.ageFrom(t.indexAt(minute), minute)
}

// ageFrom computes AgeAt given the index of the point covering minute,
// so callers that already know the index (the memoized Cursor) skip the
// binary search.
func (t *Trace) ageFrom(i int, minute int64) int64 {
	cur := t.Points[i].Price
	start := t.Points[i].Minute
	for i > 0 && t.Points[i-1].Price == cur {
		i--
		start = t.Points[i].Minute
	}
	return minute - start + 1
}

// AppendPoints appends the window [lo, hi) of the trace's points to dst
// and returns the extended slice, letting hot loops reuse one buffer
// across windows instead of allocating per call. The first appended
// point is forced to (lo, covering price) exactly as Window does. It
// panics if [lo, hi) is not within [Start, End); an empty window
// appends nothing.
func (t *Trace) AppendPoints(dst []PricePoint, lo, hi int64) []PricePoint {
	if lo < t.Start || hi > t.End || lo > hi {
		panic(fmt.Sprintf("trace: window [%d, %d) outside [%d, %d)", lo, hi, t.Start, t.End))
	}
	if lo == hi {
		return dst
	}
	// First point covering lo.
	i := sort.Search(len(t.Points), func(i int) bool {
		return t.Points[i].Minute > lo
	}) - 1
	dst = append(dst, PricePoint{Minute: lo, Price: t.Points[i].Price})
	for j := i + 1; j < len(t.Points) && t.Points[j].Minute < hi; j++ {
		dst = append(dst, t.Points[j])
	}
	return dst
}

// Window returns the sub-trace over [lo, hi). The result owns fresh
// point storage. It panics if [lo, hi) is not within [Start, End).
func (t *Trace) Window(lo, hi int64) *Trace {
	w := &Trace{Zone: t.Zone, Type: t.Type, Start: lo, End: hi}
	w.Points = t.AppendPoints(nil, lo, hi)
	return w
}

// Sojourns returns the observed (price, duration-in-minutes) runs of the
// trace, merging adjacent points with equal price. The final run is
// truncated at End.
func (t *Trace) Sojourns() []Sojourn {
	if len(t.Points) == 0 {
		return nil
	}
	var runs []Sojourn
	cur := Sojourn{Price: t.Points[0].Price}
	curStart := t.Points[0].Minute
	for _, p := range t.Points[1:] {
		if p.Price == cur.Price {
			continue
		}
		cur.Minutes = p.Minute - curStart
		runs = append(runs, cur)
		cur = Sojourn{Price: p.Price}
		curStart = p.Minute
	}
	cur.Minutes = t.End - curStart
	runs = append(runs, cur)
	return runs
}

// Sojourn is a maximal run of constant price.
type Sojourn struct {
	Price   market.Money
	Minutes int64
}

// MeanPrice returns the time-weighted mean price over the trace span, or
// zero for an empty span.
func (t *Trace) MeanPrice() market.Money {
	if t.End <= t.Start {
		return 0
	}
	var weighted int64
	for _, s := range t.Sojourns() {
		weighted += int64(s.Price) * s.Minutes
	}
	return market.Money(weighted / (t.End - t.Start))
}

// MaxPrice returns the maximum price observed, or zero for an empty trace.
func (t *Trace) MaxPrice() market.Money {
	var max market.Money
	for _, p := range t.Points {
		if p.Price > max {
			max = p.Price
		}
	}
	return max
}

// FractionAbove returns the fraction of the span during which the price
// strictly exceeds the threshold — the out-of-bid fraction under bid =
// threshold. Returns 0 for an empty span.
func (t *Trace) FractionAbove(threshold market.Money) float64 {
	if t.End <= t.Start {
		return 0
	}
	var above int64
	for _, s := range t.Sojourns() {
		if s.Price > threshold {
			above += s.Minutes
		}
	}
	return float64(above) / float64(t.End-t.Start)
}

// Set is a collection of traces keyed by pool identifier, sharing one
// time span. Type is the set's base instance type: its traces are keyed
// by bare zone name, exactly as zone-keyed sets always were, while
// traces of other types are keyed "zone/type" (see market.PoolKey). A
// single-type set therefore has the same keys, bytes, and fingerprint
// it had before pools existed.
type Set struct {
	Type   market.InstanceType
	Start  int64
	End    int64
	ByZone map[string]*Trace
}

// NewSet creates an empty trace set with the given base type.
func NewSet(it market.InstanceType, start, end int64) *Set {
	return &Set{Type: it, Start: start, End: end, ByZone: make(map[string]*Trace)}
}

// addKeyed inserts a trace under an explicit pool key after span and
// structural validation.
func (s *Set) addKeyed(key string, t *Trace) error {
	if t.Start != s.Start || t.End != s.End {
		return fmt.Errorf("trace: set span [%d,%d), trace span [%d,%d)", s.Start, s.End, t.Start, t.End)
	}
	if err := t.Validate(); err != nil {
		return err
	}
	s.ByZone[key] = t
	return nil
}

// Add inserts a base-type trace keyed by its zone, validating span and
// type consistency. An existing trace for the zone is replaced.
func (s *Set) Add(t *Trace) error {
	if t.Type != s.Type {
		return fmt.Errorf("trace: set type %s, trace type %s", s.Type, t.Type)
	}
	return s.addKeyed(t.Zone, t)
}

// AddPool inserts a trace of any cataloged type keyed by its pool
// identifier (bare zone for the base type, "zone/type" otherwise).
// Unlike Add it rejects a duplicate pool rather than replacing it.
func (s *Set) AddPool(t *Trace) error {
	key := market.PoolKey(t.Zone, t.Type, s.Type)
	if _, ok := s.ByZone[key]; ok {
		return fmt.Errorf("trace: duplicate pool %s", key)
	}
	return s.addKeyed(key, t)
}

// Zones returns the pool keys present, sorted. For a single-type set
// these are exactly the zone names.
func (s *Set) Zones() []string {
	zs := make([]string, 0, len(s.ByZone))
	for z := range s.ByZone {
		zs = append(zs, z)
	}
	sort.Strings(zs)
	return zs
}

// Fingerprint returns a stable 64-bit identity of the set's full
// contents — instance type, span, and every zone's price points — for
// keying derived artifacts such as trained price models (see
// internal/modelcache). Two sets with equal contents fingerprint
// equally regardless of construction order; any differing point
// changes the value with overwhelming probability. O(total points).
func (s *Set) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	h.Write([]byte(s.Type))
	word(uint64(s.Start))
	word(uint64(s.End))
	for _, z := range s.Zones() {
		h.Write([]byte(z))
		tr := s.ByZone[z]
		word(uint64(len(tr.Points)))
		for _, p := range tr.Points {
			word(uint64(p.Minute))
			word(uint64(p.Price))
		}
	}
	return h.Sum64()
}

// Window returns the set restricted to [lo, hi).
func (s *Set) Window(lo, hi int64) *Set {
	w := NewSet(s.Type, lo, hi)
	for z, t := range s.ByZone {
		w.ByZone[z] = t.Window(lo, hi)
	}
	return w
}
