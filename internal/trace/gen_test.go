package trace

import (
	"testing"

	"repro/internal/market"
	"repro/internal/stats"
)

const week = int64(7 * 24 * 60)

func TestZoneModelCalibration(t *testing.T) {
	for _, it := range []market.InstanceType{market.M1Small, market.M3Large} {
		for _, zone := range market.ExperimentZones() {
			m, err := ZoneModelFor(zone, it, 1)
			if err != nil {
				t.Fatal(err)
			}
			od := m.OnDemand
			if len(m.Levels) < 3 {
				t.Fatalf("%s/%s: only %d levels", zone, it, len(m.Levels))
			}
			for i := 1; i < len(m.Levels); i++ {
				if m.Levels[i] <= m.Levels[i-1] {
					t.Fatalf("%s/%s: levels not ascending at %d", zone, it, i)
				}
			}
			// All normal levels below on-demand; spike above.
			for i := 0; i < len(m.Levels)-1; i++ {
				if m.Levels[i] >= od {
					t.Errorf("%s/%s: normal level %d (%v) >= on-demand %v", zone, it, i, m.Levels[i], od)
				}
			}
			if spike := m.Levels[len(m.Levels)-1]; spike <= od {
				t.Errorf("%s/%s: spike %v <= on-demand %v", zone, it, spike, od)
			}
			// Base price fraction in the calibrated band.
			frac := m.Levels[0].Dollars() / od.Dollars()
			if frac < 0.10 || frac > 0.30 {
				t.Errorf("%s/%s: base fraction %.3f outside [0.10, 0.30]", zone, it, frac)
			}
			// Prices are tick-aligned.
			for i, lv := range m.Levels {
				if lv%Tick != 0 {
					t.Errorf("%s/%s: level %d (%d) not tick-aligned", zone, it, i, lv)
				}
			}
		}
	}
}

func TestZoneModelDeterministic(t *testing.T) {
	a, err := ZoneModelFor("us-east-1a", market.M1Small, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ZoneModelFor("us-east-1a", market.M1Small, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Levels {
		if a.Levels[i] != b.Levels[i] {
			t.Fatal("same seed produced different models")
		}
	}
	c, err := ZoneModelFor("us-east-1a", market.M1Small, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Levels[0] == c.Levels[0] && a.Levels[1] == c.Levels[1] && a.Levels[2] == c.Levels[2] {
		t.Log("warning: different seeds produced identical leading levels (possible but unlikely)")
	}
}

func TestGenerateTraceValid(t *testing.T) {
	m, err := ZoneModelFor("us-east-1a", market.M1Small, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr := m.Generate(stats.NewRNG(5), 0, week)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Points) < 20 {
		t.Fatalf("one-week trace has only %d change points", len(tr.Points))
	}
	// Every price is one of the model levels.
	levelSet := map[market.Money]bool{}
	for _, lv := range m.Levels {
		levelSet[lv] = true
	}
	for _, p := range tr.Points {
		if !levelSet[p.Price] {
			t.Fatalf("trace price %v not a model level", p.Price)
		}
	}
}

func TestGenerateTraceMostlyCheap(t *testing.T) {
	// The process should spend most time below on-demand — spot is cheap.
	m, err := ZoneModelFor("us-west-2a", market.M1Small, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr := m.Generate(stats.NewRNG(11), 0, 11*week)
	fracSpike := tr.FractionAbove(m.OnDemand)
	if fracSpike > 0.25 {
		t.Fatalf("spends %.1f%% of time above on-demand", 100*fracSpike)
	}
	fracCheap := 1 - tr.FractionAbove(m.Levels[2])
	if fracCheap < 0.4 {
		t.Fatalf("spends only %.1f%% of time in the three cheapest levels", 100*fracCheap)
	}
}

func TestGenerateSetDeterministicAndIndependent(t *testing.T) {
	cfg := GenConfig{Seed: 9, Type: market.M1Small, Zones: []string{"us-east-1a", "us-west-2b"}, Start: 0, End: week}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for z, ta := range a.ByZone {
		tb := b.ByZone[z]
		if len(ta.Points) != len(tb.Points) {
			t.Fatalf("zone %s trace lengths differ", z)
		}
		for i := range ta.Points {
			if ta.Points[i] != tb.Points[i] {
				t.Fatalf("zone %s point %d differs", z, i)
			}
		}
	}
	// Zone trace must not depend on which other zones are generated.
	solo, err := Generate(GenConfig{Seed: 9, Type: market.M1Small, Zones: []string{"us-west-2b"}, Start: 0, End: week})
	if err != nil {
		t.Fatal(err)
	}
	ta, tb := a.ByZone["us-west-2b"], solo.ByZone["us-west-2b"]
	if len(ta.Points) != len(tb.Points) {
		t.Fatal("zone trace depends on sibling zones")
	}
	for i := range ta.Points {
		if ta.Points[i] != tb.Points[i] {
			t.Fatal("zone trace depends on sibling zones")
		}
	}
}

func TestGenerateZonesDiffer(t *testing.T) {
	cfg := GenConfig{Seed: 9, Type: market.M1Small, Zones: []string{"us-east-1a", "us-east-1b"}, Start: 0, End: week}
	s, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := s.ByZone["us-east-1a"]
	b := s.ByZone["us-east-1b"]
	if a.MeanPrice() == b.MeanPrice() && len(a.Points) == len(b.Points) {
		t.Fatal("two zones generated identical-looking traces")
	}
}

func TestGenerateRejectsBadSpan(t *testing.T) {
	_, err := Generate(GenConfig{Seed: 1, Type: market.M1Small, Zones: []string{"us-east-1a"}, Start: 10, End: 5})
	if err == nil {
		t.Fatal("invalid span accepted")
	}
}

func TestGenerateUnknownZone(t *testing.T) {
	_, err := Generate(GenConfig{Seed: 1, Type: market.M1Small, Zones: []string{"atlantis-1a"}, Start: 0, End: 10})
	if err == nil {
		t.Fatal("unknown zone accepted")
	}
}
