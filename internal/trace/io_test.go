package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/market"
)

func genSmallSet(t *testing.T) *Set {
	t.Helper()
	s, err := Generate(GenConfig{
		Seed: 4, Type: market.M1Small,
		Zones: []string{"us-east-1a", "eu-west-1b"},
		Start: 0, End: 24 * 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func setsEqual(t *testing.T, a, b *Set) {
	t.Helper()
	if a.Type != b.Type || a.Start != b.Start || a.End != b.End {
		t.Fatalf("set metadata differs: %v/%d/%d vs %v/%d/%d", a.Type, a.Start, a.End, b.Type, b.Start, b.End)
	}
	if len(a.ByZone) != len(b.ByZone) {
		t.Fatalf("zone counts differ: %d vs %d", len(a.ByZone), len(b.ByZone))
	}
	for z, ta := range a.ByZone {
		tb, ok := b.ByZone[z]
		if !ok {
			t.Fatalf("zone %s missing", z)
		}
		if len(ta.Points) != len(tb.Points) {
			t.Fatalf("zone %s point counts differ: %d vs %d", z, len(ta.Points), len(tb.Points))
		}
		for i := range ta.Points {
			if ta.Points[i] != tb.Points[i] {
				t.Fatalf("zone %s point %d: %+v vs %+v", z, i, ta.Points[i], tb.Points[i])
			}
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := genSmallSet(t)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, market.M1Small, s.Start, s.End)
	if err != nil {
		t.Fatal(err)
	}
	setsEqual(t, s, got)
}

func TestCSVHeaderCheck(t *testing.T) {
	_, err := ReadCSV(strings.NewReader("a,b\n1,2\n"), market.M1Small, 0, 10)
	if err == nil {
		t.Fatal("bad header accepted")
	}
}

func TestCSVTypeMismatch(t *testing.T) {
	s := genSmallSet(t)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCSV(&buf, market.M3Large, s.Start, s.End); err == nil {
		t.Fatal("type mismatch accepted")
	}
}

func TestCSVEmpty(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), market.M1Small, 0, 10); err == nil {
		t.Fatal("empty CSV accepted")
	}
}

func TestCSVBadRows(t *testing.T) {
	bad := []string{
		"zone,type,minute,price_usd\nus-east-1a,m1.small,xyz,0.01\n",
		"zone,type,minute,price_usd\nus-east-1a,m1.small,0,abc\n",
	}
	for _, csvText := range bad {
		if _, err := ReadCSV(strings.NewReader(csvText), market.M1Small, 0, 10); err == nil {
			t.Fatalf("bad CSV accepted: %q", csvText)
		}
	}
}

const csvHeader = "zone,type,minute,price_usd\n"

// TestCSVStrictRejectsWithLineNumbers pins strict mode's contract: the
// first malformed row fails the read with an error naming its line.
func TestCSVStrictRejectsWithLineNumbers(t *testing.T) {
	cases := []struct{ name, rows, wantLine string }{
		{"nan-price", "us-east-1a,m1.small,0,NaN\n", "line 2"},
		{"inf-price", "us-east-1a,m1.small,0,+Inf\n", "line 2"},
		{"zero-price", "us-east-1a,m1.small,0,0\n", "line 2"},
		{"negative-price", "us-east-1a,m1.small,0,-0.01\n", "line 2"},
		{"duplicate-minute", "us-east-1a,m1.small,0,0.01\nus-east-1a,m1.small,0,0.02\n", "line 3"},
		{"out-of-order-minute", "us-east-1a,m1.small,0,0.01\nus-east-1a,m1.small,10,0.02\nus-east-1a,m1.small,5,0.02\n", "line 4"},
		{"truncated-row", "us-east-1a,m1.small,0,0.01\nus-east-1a,m1.small,5\n", "line 3"},
		{"bad-minute", "us-east-1a,m1.small,later,0.01\n", "line 2"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadCSV(strings.NewReader(csvHeader+c.rows), market.M1Small, 0, 24*60)
			if err == nil {
				t.Fatal("malformed CSV accepted")
			}
			if !strings.Contains(err.Error(), c.wantLine) {
				t.Fatalf("error %q does not name %s", err, c.wantLine)
			}
		})
	}
}

// TestCSVLenientQuarantinesAndKeepsRest drives one of every violation
// through a lenient read and checks the good rows survive while the
// report accounts each bad one by reason.
func TestCSVLenientQuarantinesAndKeepsRest(t *testing.T) {
	body := csvHeader +
		"us-east-1a,m1.small,0,0.01\n" + // good
		"us-east-1a,m1.small,10,NaN\n" + // nan-price
		"us-east-1a,m1.small,15,0\n" + // non-positive-price
		"us-east-1a,m1.small,20,0.02\n" + // good
		"us-east-1a,m1.small,20,0.03\n" + // duplicate-minute
		"us-east-1a,m1.small,5,0.03\n" + // out-of-order-minute
		"us-east-1a,m1.small,30\n" + // truncated-row
		"us-east-1a,m1.small,later,0.01\n" + // bad-minute
		"us-east-1a,m3.large,40,0.01\n" // type-mismatch
	set, rep, err := ReadCSVMode(strings.NewReader(body), market.M1Small, 0, 24*60, Lenient)
	if err != nil {
		t.Fatal(err)
	}
	pts := set.ByZone["us-east-1a"].Points
	if len(pts) != 2 || pts[0].Minute != 0 || pts[1].Minute != 20 {
		t.Fatalf("kept points %+v, want minutes 0 and 20", pts)
	}
	if rep.Quarantined != 7 {
		t.Fatalf("quarantined %d rows, want 7: %+v", rep.Quarantined, rep.Reasons)
	}
	for _, reason := range []string{
		ReasonNaNPrice, ReasonNonPositivePrice, ReasonDuplicateMinute,
		ReasonOutOfOrder, ReasonTruncatedRow, ReasonBadMinute, ReasonTypeMismatch,
	} {
		if rep.Reasons[reason] != 1 {
			t.Errorf("reason %s counted %d times, want 1 (%+v)", reason, rep.Reasons[reason], rep.Reasons)
		}
	}
}

// TestCSVLenientDropsUnusableZone: a zone whose surviving rows cannot
// form a valid trace (first point after the span start once the bad row
// is gone) is dropped and counted, not fatal.
func TestCSVLenientDropsUnusableZone(t *testing.T) {
	body := csvHeader +
		"eu-west-1b,m1.small,0,-1\n" + // quarantined, leaving the zone to start at 10
		"eu-west-1b,m1.small,10,0.02\n" +
		"us-east-1a,m1.small,0,0.01\n"
	set, rep, err := ReadCSVMode(strings.NewReader(body), market.M1Small, 0, 24*60, Lenient)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := set.ByZone["eu-west-1b"]; ok {
		t.Fatal("unusable zone kept")
	}
	if _, ok := set.ByZone["us-east-1a"]; !ok {
		t.Fatal("good zone dropped")
	}
	if rep.Reasons[ReasonZoneDropped] != 1 || rep.Reasons[ReasonNonPositivePrice] != 1 {
		t.Fatalf("report %+v, want one zone-dropped and one non-positive-price", rep.Reasons)
	}

	// When every zone is unusable, even a lenient read must fail rather
	// than return an empty set.
	empty := csvHeader + "us-east-1a,m1.small,5,0.01\n" // first point after span start
	if _, _, err := ReadCSVMode(strings.NewReader(empty), market.M1Small, 0, 24*60, Lenient); err == nil {
		t.Fatal("zone-less lenient read accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := genSmallSet(t)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	setsEqual(t, s, got)
}

func TestJSONGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Fatal("garbage JSON accepted")
	}
}

// TestJSONStrictRejectsBadPoints mirrors the CSV strictness for the
// JSON reader: violations name the zone and point index.
func TestJSONStrictRejectsBadPoints(t *testing.T) {
	cases := []struct{ name, body, wantSub string }{
		{"non-positive-price",
			`{"type":"m1.small","start":0,"end":100,"traces":[{"zone":"us-east-1a","points":[{"minute":0,"price_micro_usd":9000},{"minute":10,"price_micro_usd":-5}]}]}`,
			"zone us-east-1a point 1"},
		{"duplicate-minute",
			`{"type":"m1.small","start":0,"end":100,"traces":[{"zone":"us-east-1a","points":[{"minute":0,"price_micro_usd":9000},{"minute":0,"price_micro_usd":8000}]}]}`,
			"zone us-east-1a point 1"},
		{"out-of-order-minute",
			`{"type":"m1.small","start":0,"end":100,"traces":[{"zone":"us-east-1a","points":[{"minute":0,"price_micro_usd":9000},{"minute":20,"price_micro_usd":8000},{"minute":10,"price_micro_usd":7000}]}]}`,
			"zone us-east-1a point 2"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadJSON(strings.NewReader(c.body))
			if err == nil {
				t.Fatal("malformed JSON trace accepted")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not name %s", err, c.wantSub)
			}
		})
	}
}

// TestJSONLenientQuarantinesAndDropsZones: bad points are skipped and
// counted; a zone left with no usable points at all is dropped.
func TestJSONLenientQuarantinesAndDropsZones(t *testing.T) {
	body := `{"type":"m1.small","start":0,"end":100,"traces":[` +
		`{"zone":"us-east-1a","points":[{"minute":0,"price_micro_usd":9000},{"minute":10,"price_micro_usd":-5},{"minute":20,"price_micro_usd":8000}]},` +
		`{"zone":"eu-west-1b","points":[{"minute":5,"price_micro_usd":0}]}]}`
	set, rep, err := ReadJSONMode(strings.NewReader(body), Lenient)
	if err != nil {
		t.Fatal(err)
	}
	pts := set.ByZone["us-east-1a"].Points
	if len(pts) != 2 || pts[0].Minute != 0 || pts[1].Minute != 20 {
		t.Fatalf("kept points %+v, want minutes 0 and 20", pts)
	}
	if _, ok := set.ByZone["eu-west-1b"]; ok {
		t.Fatal("all-quarantined zone kept")
	}
	if rep.Reasons[ReasonNonPositivePrice] != 2 || rep.Reasons[ReasonZoneDropped] != 1 {
		t.Fatalf("report %+v, want 2 non-positive-price and 1 zone-dropped", rep.Reasons)
	}
}
