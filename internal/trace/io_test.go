package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/market"
)

func genSmallSet(t *testing.T) *Set {
	t.Helper()
	s, err := Generate(GenConfig{
		Seed: 4, Type: market.M1Small,
		Zones: []string{"us-east-1a", "eu-west-1b"},
		Start: 0, End: 24 * 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func setsEqual(t *testing.T, a, b *Set) {
	t.Helper()
	if a.Type != b.Type || a.Start != b.Start || a.End != b.End {
		t.Fatalf("set metadata differs: %v/%d/%d vs %v/%d/%d", a.Type, a.Start, a.End, b.Type, b.Start, b.End)
	}
	if len(a.ByZone) != len(b.ByZone) {
		t.Fatalf("zone counts differ: %d vs %d", len(a.ByZone), len(b.ByZone))
	}
	for z, ta := range a.ByZone {
		tb, ok := b.ByZone[z]
		if !ok {
			t.Fatalf("zone %s missing", z)
		}
		if len(ta.Points) != len(tb.Points) {
			t.Fatalf("zone %s point counts differ: %d vs %d", z, len(ta.Points), len(tb.Points))
		}
		for i := range ta.Points {
			if ta.Points[i] != tb.Points[i] {
				t.Fatalf("zone %s point %d: %+v vs %+v", z, i, ta.Points[i], tb.Points[i])
			}
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := genSmallSet(t)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, market.M1Small, s.Start, s.End)
	if err != nil {
		t.Fatal(err)
	}
	setsEqual(t, s, got)
}

func TestCSVHeaderCheck(t *testing.T) {
	_, err := ReadCSV(strings.NewReader("a,b\n1,2\n"), market.M1Small, 0, 10)
	if err == nil {
		t.Fatal("bad header accepted")
	}
}

func TestCSVTypeMismatch(t *testing.T) {
	s := genSmallSet(t)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCSV(&buf, market.M3Large, s.Start, s.End); err == nil {
		t.Fatal("type mismatch accepted")
	}
}

func TestCSVEmpty(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), market.M1Small, 0, 10); err == nil {
		t.Fatal("empty CSV accepted")
	}
}

func TestCSVBadRows(t *testing.T) {
	bad := []string{
		"zone,type,minute,price_usd\nus-east-1a,m1.small,xyz,0.01\n",
		"zone,type,minute,price_usd\nus-east-1a,m1.small,0,abc\n",
	}
	for _, csvText := range bad {
		if _, err := ReadCSV(strings.NewReader(csvText), market.M1Small, 0, 10); err == nil {
			t.Fatalf("bad CSV accepted: %q", csvText)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := genSmallSet(t)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	setsEqual(t, s, got)
}

func TestJSONGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Fatal("garbage JSON accepted")
	}
}
