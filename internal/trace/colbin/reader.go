package colbin

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/market"
	"repro/internal/trace"
)

// Decode size caps: a directory that declares more bytes of content
// than the input holds is corrupt, so these bound allocation before any
// column bytes are trusted (every encoded point costs at least two
// bytes, one per column).
const (
	maxNameLen = 256
)

// PoolView is one pool's decoded columns: parallel minute and price
// slices over the file's arena, queried without materializing
// []trace.PricePoint. Views share backing storage with the File; treat
// them as read-only.
type PoolView struct {
	Key   string
	Zone  string
	Type  market.InstanceType
	Start int64 // inclusive, the file span
	End   int64 // exclusive

	minutes []int64
	prices  []market.Money
}

// Len returns the number of price points.
func (v *PoolView) Len() int { return len(v.minutes) }

// Point returns the i-th price point.
func (v *PoolView) Point(i int) trace.PricePoint {
	return trace.PricePoint{Minute: v.minutes[i], Price: v.prices[i]}
}

// indexAt returns the index of the last point at or before minute,
// panicking outside [Start, End) like trace.Trace.PriceAt.
func (v *PoolView) indexAt(minute int64) int {
	if minute < v.Start || minute >= v.End {
		panic(fmt.Sprintf("colbin: minute %d outside [%d, %d)", minute, v.Start, v.End))
	}
	return sort.Search(len(v.minutes), func(i int) bool {
		return v.minutes[i] > minute
	}) - 1
}

// PriceAt returns the price in effect at minute, straight off the
// column. Panics outside [Start, End).
func (v *PoolView) PriceAt(minute int64) market.Money {
	return v.prices[v.indexAt(minute)]
}

// AppendPoints appends the window [lo, hi) to dst, the first point
// forced to (lo, covering price) — the same contract as
// trace.Trace.AppendPoints, without an intermediate Trace.
func (v *PoolView) AppendPoints(dst []trace.PricePoint, lo, hi int64) []trace.PricePoint {
	if lo < v.Start || hi > v.End || lo > hi {
		panic(fmt.Sprintf("colbin: window [%d, %d) outside [%d, %d)", lo, hi, v.Start, v.End))
	}
	if lo == hi {
		return dst
	}
	i := v.indexAt(lo)
	dst = append(dst, trace.PricePoint{Minute: lo, Price: v.prices[i]})
	for j := i + 1; j < len(v.minutes) && v.minutes[j] < hi; j++ {
		dst = append(dst, trace.PricePoint{Minute: v.minutes[j], Price: v.prices[j]})
	}
	return dst
}

// File is a decoded colbin stream: the pool directory plus every
// pool's columns, decoded into two shared arenas.
type File struct {
	Base  market.InstanceType
	Start int64
	End   int64

	pools []PoolView
	byKey map[string]int
}

// Zones returns the pool keys present, sorted — the same keys and
// order trace.Set.Zones would report.
func (f *File) Zones() []string {
	zs := make([]string, len(f.pools))
	for i := range f.pools {
		zs[i] = f.pools[i].Key
	}
	return zs
}

// Pool returns the view for a pool key, or nil when absent. O(1).
func (f *File) Pool(key string) *PoolView {
	i, ok := f.byKey[key]
	if !ok {
		return nil
	}
	return &f.pools[i]
}

// Pools returns every pool view in key order.
func (f *File) Pools() []PoolView { return f.pools }

// Set materializes the file as a trace.Set for consumers that need
// one (the cloud provider, model training). Points for all pools share
// a single arena allocation.
func (f *File) Set() *trace.Set {
	set := trace.NewSet(f.Base, f.Start, f.End)
	total := 0
	for i := range f.pools {
		total += f.pools[i].Len()
	}
	arena := make([]trace.PricePoint, 0, total)
	for i := range f.pools {
		v := &f.pools[i]
		lo := len(arena)
		for j := 0; j < v.Len(); j++ {
			arena = append(arena, v.Point(j))
		}
		t := &trace.Trace{Zone: v.Zone, Type: v.Type, Start: f.Start, End: f.End, Points: arena[lo:len(arena):len(arena)]}
		if err := set.AddPool(t); err != nil {
			// Decode validated every pool; a failure here is a bug.
			panic(fmt.Sprintf("colbin: materializing validated pool %s: %v", v.Key, err))
		}
	}
	return set
}

// decoder walks the raw bytes with bounds-checked varint reads.
type decoder struct {
	data []byte
	off  int
}

func (d *decoder) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("colbin: corrupt %s at offset %d", what, d.off)
	}
	d.off += n
	return v, nil
}

func (d *decoder) varint(what string) (int64, error) {
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("colbin: corrupt %s at offset %d", what, d.off)
	}
	d.off += n
	return v, nil
}

func (d *decoder) str(what string) (string, error) {
	n, err := d.uvarint(what + " length")
	if err != nil {
		return "", err
	}
	if n > maxNameLen {
		return "", fmt.Errorf("colbin: %s length %d exceeds %d", what, n, maxNameLen)
	}
	if d.off+int(n) > len(d.data) {
		return "", fmt.Errorf("colbin: truncated %s at offset %d", what, d.off)
	}
	s := string(d.data[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

// Read decodes a colbin stream from r; see Decode.
func Read(data []byte) (*File, error) {
	f, _, err := Decode(data, trace.Strict)
	return f, err
}

// Decode parses a colbin stream. Structural corruption — bad magic,
// truncated varints, directory entries pointing outside the column
// section — is an error in both modes. Per-point violations
// (non-positive price, duplicate minute) and per-pool violations
// (unknown type, duplicate pool, span mismatch) follow the
// Strict/Lenient contract of trace.ReadCSVMode: Strict fails on the
// first one naming the pool and point, Lenient quarantines the point
// or drops the pool and counts it in the ReadReport.
func Decode(data []byte, mode trace.ReadMode) (*File, *trace.ReadReport, error) {
	if !IsColbin(data) {
		return nil, nil, fmt.Errorf("colbin: bad magic")
	}
	if len(data) < len(Magic)+1 {
		return nil, nil, fmt.Errorf("colbin: truncated header")
	}
	if v := data[len(Magic)]; v != Version {
		return nil, nil, fmt.Errorf("colbin: unsupported version %d (want %d)", v, Version)
	}
	d := &decoder{data: data, off: len(Magic) + 1}
	baseStr, err := d.str("base type")
	if err != nil {
		return nil, nil, err
	}
	base := market.InstanceType(baseStr)
	if _, err := market.Shape(base); err != nil {
		return nil, nil, fmt.Errorf("colbin: base type: %v", err)
	}
	start, err := d.varint("span start")
	if err != nil {
		return nil, nil, err
	}
	end, err := d.varint("span end")
	if err != nil {
		return nil, nil, err
	}
	if end < start {
		return nil, nil, fmt.Errorf("colbin: span end %d before start %d", end, start)
	}
	nPools, err := d.uvarint("pool count")
	if err != nil {
		return nil, nil, err
	}
	if nPools > uint64(len(data)) {
		return nil, nil, fmt.Errorf("colbin: pool count %d exceeds input size", nPools)
	}

	type dirEntry struct {
		zone, typ   string
		n           int
		off, length int
	}
	dir := make([]dirEntry, 0, nPools)
	var totalPoints uint64
	for i := uint64(0); i < nPools; i++ {
		var e dirEntry
		if e.zone, err = d.str("zone"); err != nil {
			return nil, nil, err
		}
		if e.typ, err = d.str("type"); err != nil {
			return nil, nil, err
		}
		n, err := d.uvarint("point count")
		if err != nil {
			return nil, nil, err
		}
		totalPoints += n
		// Each point costs at least one minute byte and one price byte.
		if totalPoints*2 > uint64(len(data)) {
			return nil, nil, fmt.Errorf("colbin: declared points exceed input size")
		}
		e.n = int(n)
		off, err := d.uvarint("group offset")
		if err != nil {
			return nil, nil, err
		}
		length, err := d.uvarint("group length")
		if err != nil {
			return nil, nil, err
		}
		if off > uint64(len(data)) || length > uint64(len(data)) {
			return nil, nil, fmt.Errorf("colbin: group bounds exceed input size")
		}
		e.off, e.length = int(off), int(length)
		dir = append(dir, e)
	}
	colStart := d.off

	report := &trace.ReadReport{}
	// Pool views alias subslices of these arenas, so they must never
	// reallocate: capacity is the directory's declared total, each pool
	// appends at most its declared count, and lenient compaction only
	// shrinks.
	minuteArena := make([]int64, 0, totalPoints)
	priceArena := make([]market.Money, 0, totalPoints)
	f := &File{Base: base, Start: start, End: end, byKey: make(map[string]int, len(dir))}
	for _, e := range dir {
		lo := colStart + e.off
		hi := lo + e.length
		if lo > len(data) || hi > len(data) || hi < lo {
			return nil, nil, fmt.Errorf("colbin: pool %s/%s column group outside input", e.zone, e.typ)
		}
		g := &decoder{data: data[:hi], off: lo}

		typ := base
		if e.typ != "" {
			typ = market.InstanceType(e.typ)
			if _, terr := market.Shape(typ); terr != nil {
				if mode == trace.Lenient {
					report.Add(trace.ReasonTypeMismatch)
					continue
				}
				return nil, nil, fmt.Errorf("colbin: pool %s: %v", e.zone, terr)
			}
		}
		key := market.PoolKey(e.zone, typ, base)

		mLo := len(minuteArena)
		minute := start
		for i := 0; i < e.n; i++ {
			var delta int64
			if i == 0 {
				delta, err = g.varint("minute")
			} else {
				var ud uint64
				ud, err = g.uvarint("minute delta")
				delta = int64(ud)
			}
			if err != nil {
				return nil, nil, fmt.Errorf("colbin: pool %s: %w", key, err)
			}
			minute += delta
			minuteArena = append(minuteArena, minute)
		}
		pLo := len(priceArena)
		var price int64
		for i := 0; i < e.n; i++ {
			delta, err := g.varint("price delta")
			if err != nil {
				return nil, nil, fmt.Errorf("colbin: pool %s: %w", key, err)
			}
			price += delta
			priceArena = append(priceArena, market.Money(price))
		}
		if g.off != hi {
			return nil, nil, fmt.Errorf("colbin: pool %s: %d trailing bytes in column group", key, hi-g.off)
		}

		// Per-point validation over the decoded columns, compacting the
		// kept points in place. Minute deltas are unsigned, so the only
		// order violation a stream can express is a duplicate.
		minutes := minuteArena[mLo:]
		prices := priceArena[pLo:]
		quarantine := func(i int, reason, format string, args ...any) error {
			if mode == trace.Lenient {
				report.Add(reason)
				return nil
			}
			return fmt.Errorf("colbin: pool %s point %d: %s", key, i, fmt.Sprintf(format, args...))
		}
		kept := 0
		for i := 0; i < len(minutes); i++ {
			if prices[i] <= 0 {
				if err := quarantine(i, trace.ReasonNonPositivePrice, "price %d micro-USD not positive", prices[i]); err != nil {
					return nil, nil, err
				}
				continue
			}
			if kept > 0 && minutes[i] == minutes[kept-1] {
				if err := quarantine(i, trace.ReasonDuplicateMinute, "minute %d repeated", minutes[i]); err != nil {
					return nil, nil, err
				}
				continue
			}
			minutes[kept] = minutes[i]
			prices[kept] = prices[i]
			kept++
		}
		minuteArena = minuteArena[:mLo+kept]
		priceArena = priceArena[:pLo+kept]
		minutes = minuteArena[mLo:]
		prices = priceArena[pLo:]

		// Pool-level validation mirroring Set.AddPool + Trace.Validate.
		drop := func(format string, args ...any) error {
			if mode == trace.Lenient {
				report.Add(trace.ReasonZoneDropped)
				minuteArena = minuteArena[:mLo]
				priceArena = priceArena[:pLo]
				return nil
			}
			return fmt.Errorf("colbin: pool %s: %s", key, fmt.Sprintf(format, args...))
		}
		_, dup := f.byKey[key]
		switch {
		case dup:
			if err := drop("duplicate pool"); err != nil {
				return nil, nil, err
			}
			continue
		case end > start && kept == 0:
			if err := drop("non-empty span with no points"); err != nil {
				return nil, nil, err
			}
			continue
		case kept > 0 && minutes[0] != start:
			if err := drop("first point at %d, want start %d", minutes[0], start); err != nil {
				return nil, nil, err
			}
			continue
		case kept > 0 && minutes[kept-1] >= end:
			if err := drop("last point %d at or beyond end %d", minutes[kept-1], end); err != nil {
				return nil, nil, err
			}
			continue
		}
		f.byKey[key] = len(f.pools)
		f.pools = append(f.pools, PoolView{
			Key: key, Zone: e.zone, Type: typ, Start: start, End: end,
			minutes: minutes, prices: prices,
		})
	}
	if len(f.pools) == 0 {
		return nil, nil, fmt.Errorf("trace: no usable zones")
	}
	sortPools(f.pools)
	for i := range f.pools {
		f.byKey[f.pools[i].Key] = i
	}
	return f, report, nil
}
