// Package colbin is the columnar binary trace format: a compact,
// mmap-friendly serialization of trace.Set for fleet-scale replay,
// where CSV/JSON decode time dominates the run.
//
// Layout (all integers varint-encoded, little-endian base-128):
//
//	offset  field
//	0       magic "CBT1" (4 bytes)
//	4       version (1 byte, currently 1)
//	5       base instance type   (uvarint length + bytes)
//	·       span start           (zigzag varint, minutes)
//	·       span end             (zigzag varint, minutes)
//	·       pool count P         (uvarint)
//	·       pool directory, P entries:
//	            zone             (uvarint length + bytes)
//	            type             (uvarint length + bytes; empty = base type)
//	            point count N    (uvarint)
//	            group offset     (uvarint, from start of column section)
//	            group length     (uvarint, bytes)
//	·       column section, P groups; each group is
//	            minute column: zigzag(minute[0] - start),
//	                           then N-1 × uvarint(minute[i] - minute[i-1])
//	            price column:  zigzag(price[0] micro-USD),
//	                           then N-1 × zigzag(price[i] - price[i-1])
//
// The directory gives O(1) pool lookup without touching column bytes;
// prices are exact (micro-USD integers, no float round-trip); minute
// and price deltas are small in real traces, so the format is typically
// 4-6× smaller than the CSV and decodes an order of magnitude faster.
// Readers hand out PoolView windows over the decoded columns without
// materializing []trace.PricePoint per query (see reader.go).
package colbin

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/market"
	"repro/internal/trace"
)

// Magic identifies a colbin stream; IsColbin sniffs it.
const Magic = "CBT1"

// Version is the current format version byte.
const Version = 1

// IsColbin reports whether the byte prefix looks like a colbin stream.
// Four bytes are enough; fewer can never match.
func IsColbin(prefix []byte) bool {
	return len(prefix) >= len(Magic) && string(prefix[:len(Magic)]) == Magic
}

// Encode serializes the set into the colbin layout.
func Encode(s *trace.Set) []byte {
	keys := s.Zones()
	type group struct {
		zone, typ string
		n         int
		data      []byte
	}
	groups := make([]group, 0, len(keys))
	var cols int
	for _, key := range keys {
		t := s.ByZone[key]
		g := group{zone: t.Zone, n: len(t.Points)}
		if t.Type != s.Type {
			g.typ = string(t.Type)
		}
		var buf []byte
		prev := s.Start
		for i, p := range t.Points {
			if i == 0 {
				buf = binary.AppendVarint(buf, p.Minute-prev)
			} else {
				buf = binary.AppendUvarint(buf, uint64(p.Minute-prev))
			}
			prev = p.Minute
		}
		var prevPrice int64
		for _, p := range t.Points {
			buf = binary.AppendVarint(buf, int64(p.Price)-prevPrice)
			prevPrice = int64(p.Price)
		}
		g.data = buf
		cols += len(buf)
		groups = append(groups, g)
	}

	out := make([]byte, 0, 64+len(keys)*32+cols)
	out = append(out, Magic...)
	out = append(out, Version)
	out = appendString(out, string(s.Type))
	out = binary.AppendVarint(out, s.Start)
	out = binary.AppendVarint(out, s.End)
	out = binary.AppendUvarint(out, uint64(len(groups)))
	off := 0
	for _, g := range groups {
		out = appendString(out, g.zone)
		out = appendString(out, g.typ)
		out = binary.AppendUvarint(out, uint64(g.n))
		out = binary.AppendUvarint(out, uint64(off))
		out = binary.AppendUvarint(out, uint64(len(g.data)))
		off += len(g.data)
	}
	for _, g := range groups {
		out = append(out, g.data...)
	}
	return out
}

// Write serializes the set to w in the colbin layout.
func Write(w io.Writer, s *trace.Set) error {
	_, err := w.Write(Encode(s))
	return err
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// ReadAny reads a trace set in any supported format, sniffing colbin by
// its magic bytes and JSON by its leading '{'; anything else parses as
// CSV (pool-aware when types is non-empty). The base type, types, and
// span parameters apply only to CSV, which is not self-describing;
// colbin and JSON carry their own — callers that require a particular
// type or span must check the returned set.
func ReadAny(r io.Reader, base market.InstanceType, types []market.InstanceType, start, end int64, mode trace.ReadMode) (*trace.Set, *trace.ReadReport, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, fmt.Errorf("trace: reading input: %w", err)
	}
	if IsColbin(data) {
		f, rep, err := Decode(data, mode)
		if err != nil {
			return nil, nil, err
		}
		return f.Set(), rep, nil
	}
	if t := bytes.TrimLeft(data, " \t\r\n"); len(t) > 0 && t[0] == '{' {
		return trace.ReadJSONMode(bytes.NewReader(data), mode)
	}
	if len(types) > 0 {
		return trace.ReadCSVPoolsMode(bytes.NewReader(data), base, types, start, end, mode)
	}
	return trace.ReadCSVMode(bytes.NewReader(data), base, start, end, mode)
}

// sortPools orders decoded pools by key, matching Set.Zones order.
func sortPools(pools []PoolView) {
	sort.Slice(pools, func(i, j int) bool { return pools[i].Key < pools[j].Key })
}
