package colbin

import (
	"testing"

	"repro/internal/market"
	"repro/internal/trace"
)

// FuzzReadColbin is the binary-reader analogue of FuzzReadCSV: no
// panics on arbitrary bytes, and mode coherence — whenever Strict
// decodes successfully, Lenient must decode the identical set with
// nothing quarantined.
func FuzzReadColbin(f *testing.F) {
	set, err := trace.Generate(trace.GenConfig{
		Seed:  7,
		Type:  market.M1Small,
		Zones: []string{"us-east-1a", "eu-west-1a"},
		Start: 0,
		End:   3 * 24 * 60,
		Types: []market.InstanceType{market.C3Large},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(Encode(set))
	f.Add([]byte(Magic))
	f.Add(append([]byte(Magic), Version))
	f.Add(handBuild("m1.small", 0, 100, []handPool{{
		zone: "us-east-1a", minutes: []int64{0, 30, 30}, prices: []int64{1000, -2, 3000},
	}}))
	f.Add(handBuild("m1.small", 0, 100, []handPool{
		{zone: "us-east-1a", minutes: []int64{0}, prices: []int64{1000}},
		{zone: "us-east-1a", typ: "z9.mega", minutes: []int64{5}, prices: []int64{-1}},
	}))
	f.Add([]byte("XXXXnot a colbin stream"))

	f.Fuzz(func(t *testing.T, data []byte) {
		strictFile, strictRep, strictErr := Decode(data, trace.Strict)
		lenFile, lenRep, lenErr := Decode(data, trace.Lenient)

		if strictErr != nil {
			return // lenient may or may not recover; both outcomes are fine
		}
		if strictFile == nil {
			t.Fatal("strict success returned nil file")
		}
		if strictRep.Quarantined != 0 {
			t.Fatalf("strict decode quarantined %d rows", strictRep.Quarantined)
		}
		if lenErr != nil {
			t.Fatalf("strict succeeded but lenient failed: %v", lenErr)
		}
		if lenRep.Quarantined != 0 {
			t.Fatalf("strict succeeded but lenient quarantined %d (%v)", lenRep.Quarantined, lenRep.Reasons)
		}
		s, l := strictFile.Set(), lenFile.Set()
		if s.Fingerprint() != l.Fingerprint() {
			t.Fatal("strict and lenient decoded different sets")
		}
		// The materialized set must satisfy every Trace invariant.
		for _, key := range s.Zones() {
			if err := s.ByZone[key].Validate(); err != nil {
				t.Fatalf("decoded pool %s invalid: %v", key, err)
			}
		}
		// Round trip: re-encoding the decoded set reproduces it.
		f2, _, err := Decode(Encode(s), trace.Strict)
		if err != nil {
			t.Fatalf("re-encode failed to decode: %v", err)
		}
		if f2.Set().Fingerprint() != s.Fingerprint() {
			t.Fatal("re-encode changed the set")
		}
	})
}
