package colbin

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/market"
	"repro/internal/trace"
)

func genSet(t *testing.T) *trace.Set {
	t.Helper()
	set, err := trace.Generate(trace.GenConfig{
		Seed:  2014,
		Type:  market.M1Small,
		Zones: []string{"us-east-1a", "us-east-1b", "eu-west-1a", "ap-northeast-1a"},
		Start: 0,
		End:   14 * 24 * 60,
		Types: []market.InstanceType{market.C3Large, market.R3Large},
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return set
}

// TestRoundTrip pins the CSV→colbin→CSV property: encoding a set and
// decoding it back yields the same fingerprint, the same pool keys, and
// byte-identical canonical CSV.
func TestRoundTrip(t *testing.T) {
	set := genSet(t)
	data := Encode(set)

	f, rep, err := Decode(data, trace.Strict)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if rep.Quarantined != 0 {
		t.Fatalf("strict decode quarantined %d rows", rep.Quarantined)
	}
	got := f.Set()
	if got.Fingerprint() != set.Fingerprint() {
		t.Fatalf("fingerprint mismatch after round trip")
	}

	var orig, back bytes.Buffer
	if err := set.WriteCSV(&orig); err != nil {
		t.Fatal(err)
	}
	if err := got.WriteCSV(&back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig.Bytes(), back.Bytes()) {
		t.Fatalf("canonical CSV differs after colbin round trip")
	}

	// And from CSV: parse the canonical CSV, encode, decode — same set.
	parsed, err := trace.ReadCSVPools(bytes.NewReader(orig.Bytes()), set.Type,
		[]market.InstanceType{market.C3Large, market.R3Large}, set.Start, set.End)
	if err != nil {
		t.Fatalf("re-parse CSV: %v", err)
	}
	f2, _, err := Decode(Encode(parsed), trace.Strict)
	if err != nil {
		t.Fatalf("decode re-encoded: %v", err)
	}
	if f2.Set().Fingerprint() != set.Fingerprint() {
		t.Fatalf("fingerprint mismatch after CSV→colbin→set")
	}
}

// TestPoolViewMatchesTrace drives PriceAt and AppendPoints on the
// zero-copy views against the materialized traces.
func TestPoolViewMatchesTrace(t *testing.T) {
	set := genSet(t)
	f, _, err := Decode(Encode(set), trace.Strict)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Zones()) != len(set.Zones()) {
		t.Fatalf("zones: got %d, want %d", len(f.Zones()), len(set.Zones()))
	}
	var buf, want []trace.PricePoint
	for _, key := range set.Zones() {
		v := f.Pool(key)
		if v == nil {
			t.Fatalf("pool %s missing from file", key)
		}
		tr := set.ByZone[key]
		if v.Len() != len(tr.Points) {
			t.Fatalf("pool %s: %d points, want %d", key, v.Len(), len(tr.Points))
		}
		for m := tr.Start; m < tr.End; m += 97 {
			if v.PriceAt(m) != tr.PriceAt(m) {
				t.Fatalf("pool %s: PriceAt(%d) differs", key, m)
			}
		}
		lo, hi := tr.Start+1000, tr.End-1000
		buf = v.AppendPoints(buf[:0], lo, hi)
		want = tr.AppendPoints(want[:0], lo, hi)
		if len(buf) != len(want) {
			t.Fatalf("pool %s: window sizes differ: %d vs %d", key, len(buf), len(want))
		}
		for i := range buf {
			if buf[i] != want[i] {
				t.Fatalf("pool %s: window point %d differs", key, i)
			}
		}
	}
	if f.Pool("no-such-pool") != nil {
		t.Fatal("lookup of absent pool returned a view")
	}
}

// TestReadAnyDetectsFormats feeds the same set as colbin, JSON, and CSV
// bytes through ReadAny and checks all three decode to the same set.
func TestReadAnyDetectsFormats(t *testing.T) {
	set := genSet(t)
	types := []market.InstanceType{market.C3Large, market.R3Large}

	var csvBuf, jsonBuf bytes.Buffer
	if err := set.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if err := set.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	inputs := map[string][]byte{
		"colbin": Encode(set),
		"json":   jsonBuf.Bytes(),
		"csv":    csvBuf.Bytes(),
	}
	for name, data := range inputs {
		got, rep, err := ReadAny(bytes.NewReader(data), set.Type, types, set.Start, set.End, trace.Strict)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Quarantined != 0 {
			t.Fatalf("%s: quarantined %d", name, rep.Quarantined)
		}
		if got.Fingerprint() != set.Fingerprint() {
			t.Fatalf("%s: fingerprint mismatch", name)
		}
	}
}

// handBuild assembles colbin bytes directly so tests can express
// streams the encoder would never produce.
type handPool struct {
	zone, typ string
	minutes   []int64
	prices    []int64
}

func handBuild(base string, start, end int64, pools []handPool) []byte {
	out := []byte(Magic)
	out = append(out, Version)
	out = appendString(out, base)
	out = binary.AppendVarint(out, start)
	out = binary.AppendVarint(out, end)
	out = binary.AppendUvarint(out, uint64(len(pools)))
	var groups [][]byte
	for _, p := range pools {
		var g []byte
		prev := start
		for i, m := range p.minutes {
			if i == 0 {
				g = binary.AppendVarint(g, m-prev)
			} else {
				g = binary.AppendUvarint(g, uint64(m-prev))
			}
			prev = m
		}
		var prevPrice int64
		for _, pr := range p.prices {
			g = binary.AppendVarint(g, pr-prevPrice)
			prevPrice = pr
		}
		groups = append(groups, g)
	}
	off := 0
	for i, p := range pools {
		out = appendString(out, p.zone)
		out = appendString(out, p.typ)
		out = binary.AppendUvarint(out, uint64(len(p.minutes)))
		out = binary.AppendUvarint(out, uint64(off))
		out = binary.AppendUvarint(out, uint64(len(groups[i])))
		off += len(groups[i])
	}
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}

// TestHandBuildMatchesEncoder pins the byte layout: a hand-assembled
// valid stream is byte-identical to Encode's output.
func TestHandBuildMatchesEncoder(t *testing.T) {
	set := trace.NewSet(market.M1Small, 0, 100)
	tr := &trace.Trace{Zone: "us-east-1a", Type: market.M1Small, Start: 0, End: 100,
		Points: []trace.PricePoint{{Minute: 0, Price: 44000}, {Minute: 30, Price: 51000}, {Minute: 80, Price: 46000}}}
	if err := set.AddPool(tr); err != nil {
		t.Fatal(err)
	}
	hand := handBuild("m1.small", 0, 100, []handPool{{
		zone: "us-east-1a", minutes: []int64{0, 30, 80}, prices: []int64{44000, 51000, 46000},
	}})
	if !bytes.Equal(hand, Encode(set)) {
		t.Fatalf("hand-built bytes differ from encoder output")
	}
}

func TestDecodeMalformed(t *testing.T) {
	valid := func() []byte {
		return handBuild("m1.small", 0, 100, []handPool{{
			zone: "us-east-1a", minutes: []int64{0, 30}, prices: []int64{44000, 51000},
		}})
	}
	cases := map[string]struct {
		data       []byte
		wantErr    string // strict error substring; "" = strict succeeds
		hardErr    bool   // lenient fails too
		quarantine string // lenient reason expected when !hardErr and wantErr != ""
	}{
		"bad magic": {
			data: append([]byte("XXXX"), valid()[4:]...), wantErr: "bad magic", hardErr: true,
		},
		"bad version": {
			data: func() []byte { d := valid(); d[4] = 9; return d }(), wantErr: "unsupported version", hardErr: true,
		},
		"truncated": {
			data: valid()[:12], wantErr: "truncated", hardErr: true,
		},
		"unknown base type": {
			data:    handBuild("z9.mega", 0, 100, []handPool{{zone: "a", minutes: []int64{0}, prices: []int64{1}}}),
			wantErr: "base type", hardErr: true,
		},
		"duplicate minute": {
			data: handBuild("m1.small", 0, 100, []handPool{{
				zone: "us-east-1a", minutes: []int64{0, 30, 30, 60}, prices: []int64{1000, 2000, 3000, 4000},
			}}),
			wantErr: "repeated", quarantine: trace.ReasonDuplicateMinute,
		},
		"non-positive price": {
			data: handBuild("m1.small", 0, 100, []handPool{{
				zone: "us-east-1a", minutes: []int64{0, 30}, prices: []int64{1000, -5},
			}}),
			wantErr: "not positive", quarantine: trace.ReasonNonPositivePrice,
		},
		"unknown pool type": {
			data: handBuild("m1.small", 0, 100, []handPool{
				{zone: "us-east-1a", minutes: []int64{0}, prices: []int64{1000}},
				{zone: "us-east-1b", typ: "z9.mega", minutes: []int64{0}, prices: []int64{1000}},
			}),
			wantErr: "unknown instance type", quarantine: trace.ReasonTypeMismatch,
		},
		"first point after start": {
			data: handBuild("m1.small", 0, 100, []handPool{
				{zone: "us-east-1a", minutes: []int64{0}, prices: []int64{1000}},
				{zone: "us-east-1b", minutes: []int64{5}, prices: []int64{1000}},
			}),
			wantErr: "want start", quarantine: trace.ReasonZoneDropped,
		},
		"point beyond end": {
			data: handBuild("m1.small", 0, 100, []handPool{
				{zone: "us-east-1a", minutes: []int64{0}, prices: []int64{1000}},
				{zone: "us-east-1b", minutes: []int64{0, 100}, prices: []int64{1000, 2000}},
			}),
			wantErr: "beyond end", quarantine: trace.ReasonZoneDropped,
		},
		"duplicate pool": {
			data: handBuild("m1.small", 0, 100, []handPool{
				{zone: "us-east-1a", minutes: []int64{0}, prices: []int64{1000}},
				{zone: "us-east-1a", minutes: []int64{0}, prices: []int64{2000}},
			}),
			wantErr: "duplicate pool", quarantine: trace.ReasonZoneDropped,
		},
		"all pools invalid": {
			data: handBuild("m1.small", 0, 100, []handPool{
				{zone: "us-east-1a", minutes: []int64{5}, prices: []int64{1000}},
			}),
			wantErr: "want start", hardErr: true, // lenient drops the only pool → no usable zones
		},
		"valid": {data: valid()},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			_, _, err := Decode(tc.data, trace.Strict)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("strict: unexpected error %v", err)
				}
			} else if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("strict: error %v, want substring %q", err, tc.wantErr)
			}
			f, rep, err := Decode(tc.data, trace.Lenient)
			switch {
			case tc.hardErr:
				if err == nil {
					t.Fatalf("lenient: expected error, got pools %v", f.Zones())
				}
			case tc.quarantine != "":
				if err != nil {
					t.Fatalf("lenient: %v", err)
				}
				if rep.Reasons[tc.quarantine] == 0 {
					t.Fatalf("lenient: reasons %v, want %s counted", rep.Reasons, tc.quarantine)
				}
			default:
				if err != nil || rep.Quarantined != 0 {
					t.Fatalf("lenient: err %v, quarantined %d", err, rep.Quarantined)
				}
			}
		})
	}
}

// TestLenientKeepsGoodPoints checks that quarantining a bad point keeps
// the surrounding good ones and the delta chain intact.
func TestLenientKeepsGoodPoints(t *testing.T) {
	data := handBuild("m1.small", 0, 100, []handPool{{
		zone: "us-east-1a", minutes: []int64{0, 20, 40, 60}, prices: []int64{1000, -7, 3000, 4000},
	}})
	f, rep, err := Decode(data, trace.Lenient)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reasons[trace.ReasonNonPositivePrice] != 1 {
		t.Fatalf("reasons %v", rep.Reasons)
	}
	v := f.Pool("us-east-1a")
	if v.Len() != 3 {
		t.Fatalf("kept %d points, want 3", v.Len())
	}
	wantMinutes := []int64{0, 40, 60}
	wantPrices := []market.Money{1000, 3000, 4000}
	for i := 0; i < v.Len(); i++ {
		p := v.Point(i)
		if p.Minute != wantMinutes[i] || p.Price != wantPrices[i] {
			t.Fatalf("point %d = %+v", i, p)
		}
	}
}

func TestEmptySpanRoundTrip(t *testing.T) {
	set := trace.NewSet(market.M1Small, 50, 50)
	if err := set.AddPool(&trace.Trace{Zone: "us-east-1a", Type: market.M1Small, Start: 50, End: 50}); err != nil {
		t.Fatal(err)
	}
	f, _, err := Decode(Encode(set), trace.Strict)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Set().Fingerprint(); got != set.Fingerprint() {
		t.Fatal("empty-span fingerprint mismatch")
	}
}
