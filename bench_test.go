package repro

// One benchmark per paper artifact (DESIGN.md §3): each regenerates a
// scaled-down version of the table or figure and reports its headline
// metric via b.ReportMetric, so `go test -bench=.` doubles as a smoke
// reproduction of the whole evaluation.

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/market"
	"repro/internal/modelcache"
	"repro/internal/quorum"
	"repro/internal/replay"
	"repro/internal/strategy"
	"repro/internal/trace"
	"repro/internal/trace/colbin"
)

func quickEnv() experiments.Env { return experiments.QuickEnv() }

// BenchmarkTable1Catalog regenerates Table 1.
func BenchmarkTable1Catalog(b *testing.B) {
	zones := 0
	for i := 0; i < b.N; i++ {
		zones = 0
		for _, r := range experiments.Table1() {
			zones += len(r.Zones)
		}
	}
	b.ReportMetric(float64(zones), "zones")
}

// BenchmarkFig1TraceGen regenerates the Figure 1 price sample.
func BenchmarkFig1TraceGen(b *testing.B) {
	env := quickEnv()
	points := 0
	for i := 0; i < b.N; i++ {
		tr, err := env.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		points = len(tr.Points)
	}
	b.ReportMetric(float64(points), "price-points")
}

// BenchmarkFig4FailureModel regenerates the Figure 4 micro-benchmark.
func BenchmarkFig4FailureModel(b *testing.B) {
	env := quickEnv()
	worst := 0.0
	for i := 0; i < b.N; i++ {
		rows, err := env.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, r := range rows {
			if r.Measured > worst {
				worst = r.Measured
			}
		}
	}
	b.ReportMetric(worst, "worst-measured-FP")
}

// BenchmarkFig5OneWeek regenerates the Figure 5 one-week cost bars.
func BenchmarkFig5OneWeek(b *testing.B) {
	env := quickEnv()
	var jupiterLock float64
	for i := 0; i < b.N; i++ {
		rows, err := env.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Service == "lock" && r.Strategy == "Jupiter" {
				jupiterLock = r.Cost.Dollars()
			}
		}
	}
	b.ReportMetric(jupiterLock, "jupiter-lock-$")
}

// sweepBench runs a scaled sweep and reports one metric.
func sweepBench(b *testing.B, storageService bool, metric func([]experiments.SweepRow) float64, unit string) {
	b.Helper()
	env := quickEnv()
	var v float64
	for i := 0; i < b.N; i++ {
		var rows []experiments.SweepRow
		var err error
		if storageService {
			rows, err = env.Fig8and9()
		} else {
			rows, err = env.Fig6and7()
		}
		if err != nil {
			b.Fatal(err)
		}
		v = metric(rows)
	}
	b.ReportMetric(v, unit)
}

func pick(rows []experiments.SweepRow, strat string, hours int64) experiments.SweepRow {
	for _, r := range rows {
		if r.Strategy == strat && r.IntervalHours == hours {
			return r
		}
	}
	return experiments.SweepRow{}
}

// BenchmarkFig6LockCost regenerates the lock-service cost matrix.
func BenchmarkFig6LockCost(b *testing.B) {
	sweepBench(b, false, func(rows []experiments.SweepRow) float64 {
		return pick(rows, "Jupiter", 6).Cost.Dollars()
	}, "jupiter-6h-$")
}

// BenchmarkFig7LockAvail regenerates the lock-service availability
// matrix.
func BenchmarkFig7LockAvail(b *testing.B) {
	sweepBench(b, false, func(rows []experiments.SweepRow) float64 {
		return pick(rows, "Jupiter", 6).Availability
	}, "jupiter-6h-avail")
}

// BenchmarkFig8StorageCost regenerates the storage-service cost matrix.
func BenchmarkFig8StorageCost(b *testing.B) {
	sweepBench(b, true, func(rows []experiments.SweepRow) float64 {
		return pick(rows, "Jupiter", 6).Cost.Dollars()
	}, "jupiter-6h-$")
}

// BenchmarkFig9StorageAvail regenerates the storage-service
// availability matrix.
func BenchmarkFig9StorageAvail(b *testing.B) {
	sweepBench(b, true, func(rows []experiments.SweepRow) float64 {
		return pick(rows, "Jupiter", 6).Availability
	}, "jupiter-6h-avail")
}

// BenchmarkHeadlineReduction regenerates the headline cost-reduction
// number for the lock service.
func BenchmarkHeadlineReduction(b *testing.B) {
	env := quickEnv()
	var reduction float64
	for i := 0; i < b.N; i++ {
		rows, err := env.Fig6and7()
		if err != nil {
			b.Fatal(err)
		}
		h, err := experiments.HeadlineFrom(rows, "lock", experiments.LockSpec().TargetAvailability())
		if err != nil {
			b.Fatal(err)
		}
		reduction = h.ReductionPercent
	}
	b.ReportMetric(reduction, "reduction-%")
}

// BenchmarkExample3Quorum regenerates the §3 worked example's exact
// availability arithmetic.
func BenchmarkExample3Quorum(b *testing.B) {
	var avail float64
	for i := 0; i < b.N; i++ {
		avail = quorum.AvailabilityEqual(5, 3, market.OnDemandFailureProbability)
	}
	b.ReportMetric(quorum.DowntimeSeconds(avail, quorum.SecondsPerMonth), "downtime-s/month")
}

// BenchmarkAblationEstimators compares Jupiter's interval forecaster
// against the stationary and one-step variants (DESIGN.md §6).
func BenchmarkAblationEstimators(b *testing.B) {
	env := quickEnv()
	var gap float64
	for i := 0; i < b.N; i++ {
		rows, err := env.AblationEstimators()
		if err != nil {
			b.Fatal(err)
		}
		// Availability advantage of the interval mode over one-step.
		var interval, oneStep float64
		for _, r := range rows {
			switch r.Mode {
			case "interval":
				interval = r.Availability
			case "one-step":
				oneStep = r.Availability
			}
		}
		gap = interval - oneStep
	}
	b.ReportMetric(gap, "avail-gap")
}

// BenchmarkTraceGeneration measures the synthetic market generator
// across all 17 experiment zones for one week.
func BenchmarkTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := trace.Generate(trace.GenConfig{
			Seed: uint64(i), Type: market.M1Small,
			Zones: market.ExperimentZones(),
			Start: 0, End: experiments.Week,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJupiterTrain measures training the framework's per-zone
// semi-Markov models on the paper-scale 13-week history across all 17
// experiment zones. Scratch pays full estimation every iteration (a
// fresh provider each time); Cached reuses one provider, so after the
// first iteration every model is served from memory — the gap is what
// the shared provider saves each time a sweep cell would retrain. The
// headline metric is simulated training-window minutes per wall second.
func BenchmarkJupiterTrain(b *testing.B) {
	env := experiments.DefaultEnv()
	set, err := trace.Generate(trace.GenConfig{
		Seed: env.Seed, Type: market.M1Small,
		Zones: market.ExperimentZones(),
		Start: 0, End: env.TrainWeeks * experiments.Week,
	})
	if err != nil {
		b.Fatal(err)
	}
	span := set.End - set.Start
	zones := int64(len(set.Zones()))
	run := func(b *testing.B, provider func() *modelcache.Cache) {
		b.Helper()
		var minutes int64
		for i := 0; i < b.N; i++ {
			j := core.New()
			j.UseModelCache(provider())
			if err := j.TrainOn(set); err != nil {
				b.Fatal(err)
			}
			minutes += span * zones
		}
		b.ReportMetric(float64(minutes)/b.Elapsed().Seconds(), "sim-min/s")
	}
	b.Run("Scratch", func(b *testing.B) {
		run(b, modelcache.New)
	})
	b.Run("Cached", func(b *testing.B) {
		shared := modelcache.New()
		run(b, func() *modelcache.Cache { return shared })
	})
}

// BenchmarkSweepSharedCache compares a Jupiter-only interval sweep —
// parallel replay cells at 1h/3h/6h/12h, the Figures 6/7 inner loop —
// with and without a shared model provider. The 1/3/6/12-hour cells
// retrain at identical weekly boundaries, so under the shared provider
// each (zone, window) model is estimated once and served to the other
// three cells; PerCell estimates it four times. Metric: simulated
// minutes per wall second across the whole sweep.
func BenchmarkSweepSharedCache(b *testing.B) {
	env := experiments.QuickEnv()
	set, err := env.Traces(market.M1Small)
	if err != nil {
		b.Fatal(err)
	}
	spec := experiments.LockSpec()
	intervals := []int64{1, 3, 6, 12}
	sweep := func(models *modelcache.Cache) (int64, error) {
		var minutes atomic.Int64
		errs := make([]error, len(intervals))
		var wg sync.WaitGroup
		for i, h := range intervals {
			wg.Add(1)
			go func(i int, h int64) {
				defer wg.Done()
				res, err := replay.Run(replay.Config{
					Traces: set, Start: env.TrainWeeks * experiments.Week,
					Spec:            spec,
					Strategy:        core.New(),
					IntervalMinutes: h * 60, Seed: env.Seed ^ uint64(h)<<32,
					InjectHardwareFailures: true,
					Models:                 models,
				})
				if err != nil {
					errs[i] = err
					return
				}
				minutes.Add(res.TotalMinutes)
			}(i, h)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		return minutes.Load(), nil
	}
	b.Run("PerCell", func(b *testing.B) {
		var minutes int64
		for i := 0; i < b.N; i++ {
			n, err := sweep(nil) // each cell's framework uses a private cache
			if err != nil {
				b.Fatal(err)
			}
			minutes += n
		}
		b.ReportMetric(float64(minutes)/b.Elapsed().Seconds(), "sim-min/s")
	})
	b.Run("Shared", func(b *testing.B) {
		var minutes int64
		for i := 0; i < b.N; i++ {
			n, err := sweep(modelcache.New())
			if err != nil {
				b.Fatal(err)
			}
			minutes += n
		}
		b.ReportMetric(float64(minutes)/b.Elapsed().Seconds(), "sim-min/s")
	})
}

// BenchmarkSweepSharedCachePools is the heterogeneous counterpart of
// BenchmarkSweepSharedCache: the same Jupiter-only interval sweep over
// the 4-type × 17-zone pool market (m1.small base plus three sibling
// types per zone — 68 pools, 68 price models per training window), so
// the pools-vs-zones cost of the capacity-weighted planner is on
// record next to the zone-only figure.
func BenchmarkSweepSharedCachePools(b *testing.B) {
	env := experiments.QuickEnv()
	env.Types = []market.InstanceType{market.M1Medium, market.C3Large, market.R3Large}
	set, err := env.Traces(market.M1Small)
	if err != nil {
		b.Fatal(err)
	}
	spec := experiments.LockSpec()
	intervals := []int64{1, 3, 6, 12}
	sweep := func(models *modelcache.Cache) (int64, error) {
		var minutes atomic.Int64
		errs := make([]error, len(intervals))
		var wg sync.WaitGroup
		for i, h := range intervals {
			wg.Add(1)
			go func(i int, h int64) {
				defer wg.Done()
				res, err := replay.Run(replay.Config{
					Traces: set, Start: env.TrainWeeks * experiments.Week,
					Spec:            spec,
					Strategy:        core.New(),
					IntervalMinutes: h * 60, Seed: env.Seed ^ uint64(h)<<32,
					InjectHardwareFailures: true,
					Models:                 models,
				})
				if err != nil {
					errs[i] = err
					return
				}
				minutes.Add(res.TotalMinutes)
			}(i, h)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		return minutes.Load(), nil
	}
	b.Run("Shared", func(b *testing.B) {
		var minutes int64
		for i := 0; i < b.N; i++ {
			n, err := sweep(modelcache.New())
			if err != nil {
				b.Fatal(err)
			}
			minutes += n
		}
		b.ReportMetric(float64(minutes)/b.Elapsed().Seconds(), "sim-min/s")
	})
}

// BenchmarkSweepColbinSharded is the fast-trace sweep end to end: each
// iteration decodes the colbin-encoded 68-pool market (zero-copy
// column views materialized into a fresh Set) and replays the
// 1h/3h/6h/12h interval sweep in parallel cells under the
// region-sharded kernel, failure injection on. Like
// BenchmarkReplayKernel it drives the Extra strategy, so the number on
// record is the simulation pipeline's throughput — decode, event
// kernel, billing — not Jupiter's model-estimation cost (that trade
// stays pinned by BenchmarkSweepSharedCachePools). Metric: simulated
// minutes per wall second across the whole sweep.
func BenchmarkSweepColbinSharded(b *testing.B) {
	env := experiments.QuickEnv()
	env.Types = []market.InstanceType{market.M1Medium, market.C3Large, market.R3Large}
	src, err := env.Traces(market.M1Small)
	if err != nil {
		b.Fatal(err)
	}
	blob := colbin.Encode(src)
	spec := experiments.LockSpec()
	intervals := []int64{1, 3, 6, 12}
	b.ResetTimer()
	var minutes int64
	for i := 0; i < b.N; i++ {
		file, _, err := colbin.Decode(blob, trace.Strict)
		if err != nil {
			b.Fatal(err)
		}
		set := file.Set()
		var cellMinutes atomic.Int64
		errs := make([]error, len(intervals))
		var wg sync.WaitGroup
		for ci, h := range intervals {
			wg.Add(1)
			go func(ci int, h int64) {
				defer wg.Done()
				res, err := replay.Run(replay.Config{
					Traces: set, Start: env.TrainWeeks * experiments.Week,
					Spec:            spec,
					Strategy:        strategy.Extra{ExtraNodes: 2, Portion: 0.2},
					IntervalMinutes: h * 60, Seed: env.Seed ^ uint64(h)<<32,
					InjectHardwareFailures: true,
					Kernel:                 replay.KernelSharded,
				})
				if err != nil {
					errs[ci] = err
					return
				}
				cellMinutes.Add(res.TotalMinutes)
			}(ci, h)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
		minutes += cellMinutes.Load()
	}
	b.ReportMetric(float64(minutes)/b.Elapsed().Seconds(), "sim-min/s")
}

// BenchmarkReplayKernel compares the discrete-event replay kernel
// against the legacy minute-polling loop on the paper's 11-week
// lock-service replay (the Figures 6/7 workload: 13 training weeks,
// 11 accounted weeks, failure injection on). The headline metric is
// simulated minutes per second of wall clock.
func BenchmarkReplayKernel(b *testing.B) {
	env := experiments.DefaultEnv()
	set, err := env.Traces(market.M1Small)
	if err != nil {
		b.Fatal(err)
	}
	spec := experiments.LockSpec()
	for _, k := range []struct {
		name   string
		kernel replay.Kernel
	}{
		{"Event", replay.KernelEvent},
		{"Polling", replay.KernelPolling},
	} {
		// Injected is the paper workload: the FP'=0.01 failure model's
		// per-minute Bernoulli draws are part of the semantics, so even
		// the event kernel steps draw-eligible minutes individually.
		// Clean shows the pure jump advantage on a failure-free market.
		for _, inject := range []struct {
			name string
			on   bool
		}{{"Injected", true}, {"Clean", false}} {
			b.Run(k.name+"/"+inject.name, func(b *testing.B) {
				var minutes int64
				for i := 0; i < b.N; i++ {
					res, err := replay.Run(replay.Config{
						Traces: set, Start: env.TrainWeeks * experiments.Week,
						Spec:            spec,
						Strategy:        strategy.Extra{ExtraNodes: 2, Portion: 0.2},
						IntervalMinutes: 3 * 60, Seed: env.Seed,
						InjectHardwareFailures: inject.on,
						Kernel:                 k.kernel,
					})
					if err != nil {
						b.Fatal(err)
					}
					minutes += res.TotalMinutes
				}
				b.ReportMetric(float64(minutes)/b.Elapsed().Seconds(), "sim-min/s")
			})
		}
	}
}

// BenchmarkTournament runs the strategy arena at the quick scale with a
// reduced two-seed grid (full roster, every builtin chaos scenario) and
// reports Jupiter's headline numbers: scenarios where it meets the
// availability bound, and its mean replay cost in dollars.
func BenchmarkTournament(b *testing.B) {
	env := quickEnv()
	env.Jobs = 4
	var met, cost float64
	for i := 0; i < b.N; i++ {
		res, err := env.Tournament(experiments.TournamentConfig{
			Seeds: []uint64{2014, 2015},
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Strategy == "Jupiter" {
				met = float64(row.ScenariosMet)
				cost = row.MeanCostDollars
			}
		}
	}
	b.ReportMetric(met, "jupiter-scenarios-met")
	b.ReportMetric(cost, "jupiter-mean-cost-$")
}
