// Quickstart: train the Jupiter bidding framework on spot-price
// history and obtain a bidding decision for a 5-node highly available
// service — the library's core loop in ~60 lines.
package main

import (
	"fmt"
	"log"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/market"
	"repro/internal/strategy"
	"repro/internal/trace"
)

// view adapts the simulated cloud provider to the strategy interface.
type view struct{ p *cloud.Provider }

func (v view) Now() int64      { return v.p.Now() }
func (v view) Zones() []string { return v.p.Zones() }
func (v view) SpotPrice(zone string) (market.Money, error) {
	return v.p.SpotPrice(zone)
}
func (v view) SpotPriceAge(zone string) (int64, error) {
	return v.p.SpotPriceAge(zone)
}
func (v view) PriceHistory(zone string, from, to int64) (*trace.Trace, error) {
	return v.p.PriceHistory(zone, from, to)
}

func main() {
	// 1. A market: 13 weeks of per-zone spot price history across the
	//    paper's 17 availability zones (synthetic, deterministic).
	set, err := trace.Generate(trace.GenConfig{
		Seed:  1,
		Type:  market.M1Small,
		Zones: market.ExperimentZones(),
		Start: 0,
		End:   13*experiments.Week + 24*60,
	})
	if err != nil {
		log.Fatal(err)
	}
	provider := cloud.NewProvider(set, cloud.Config{Seed: 1})
	provider.AdvanceTo(13 * experiments.Week) // history accumulated

	// 2. The service to host: a distributed lock service — 5 replicas,
	//    majority quorum — whose availability must match an on-demand
	//    deployment.
	spec := strategy.ServiceSpec{Type: market.M1Small, BaseNodes: 5, DataShards: 1}
	fmt.Printf("availability target: %.7f\n", spec.TargetAvailability())

	// 3. Ask Jupiter for bids covering the next 1-hour interval.
	j := core.New()
	decision, err := j.Decide(view{provider}, spec, 60)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Place the bids with the cloud provider.
	fmt.Printf("Jupiter chose %d spot instances:\n", len(decision.Bids))
	var total market.Money
	for _, b := range decision.Bids {
		id, err := provider.RequestSpot(b.Zone, spec.Type, b.Price)
		if err != nil {
			log.Fatal(err)
		}
		spot, _ := provider.SpotPrice(b.Zone)
		fmt.Printf("  %-18s bid %-9s (spot %s) -> %s\n", b.Zone, b.Price, spot, id)
		total += b.Price
	}
	od, _ := market.OnDemandPrice("us-east-1a", spec.Type)
	fmt.Printf("bid-sum upper bound %s/h vs 5 on-demand instances at %s/h\n",
		total, od*5)
}
