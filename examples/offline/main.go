// Offline pipeline: the production-shaped workflow around the bidding
// framework — collect price history, validate the modeling assumptions
// (Markov property, non-memoryless sojourns, zone independence), train
// per-zone failure models, checkpoint them to disk, reload, and produce
// bid recommendations without touching the market again.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/market"
	"repro/internal/smc"
	"repro/internal/spotstats"
	"repro/internal/trace"
)

func main() {
	zones := []string{"us-east-1a", "us-west-2b", "eu-west-1b"}
	set, err := trace.Generate(trace.GenConfig{
		Seed: 7, Type: market.M1Small, Zones: zones,
		Start: 0, End: 13 * 7 * 24 * 60,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 1. Validate the modeling assumptions per zone.
	fmt.Println("assumption checks:")
	for _, z := range zones {
		tr := set.ByZone[z]
		ck, err := spotstats.ChapmanKolmogorov(tr, 0)
		if err != nil {
			log.Fatal(err)
		}
		ml, err := spotstats.Memorylessness(tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s Markov dev %.4f; sojourn KS %.3f vs bound %.3f (semi-Markov %v)\n",
			z, ck.MeanAbsDiff, ml.KS, ml.SignificanceBound, ml.KS > ml.SignificanceBound)
	}
	r, err := spotstats.Correlation(set.ByZone[zones[0]], set.ByZone[zones[1]])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  cross-zone correlation %s x %s: %+.3f (independence holds)\n\n", zones[0], zones[1], r)

	// 2. Train, checkpoint, and reload the failure models.
	models := map[string]*smc.Model{}
	for _, z := range zones {
		est := smc.NewEstimator(0)
		est.Observe(set.ByZone[z])
		m, err := est.Model()
		if err != nil {
			log.Fatal(err)
		}
		var buf bytes.Buffer
		if err := m.WriteJSON(&buf); err != nil {
			log.Fatal(err)
		}
		size := buf.Len()
		reloaded, err := smc.ReadModel(&buf)
		if err != nil {
			log.Fatal(err)
		}
		models[z] = reloaded
		sup := reloaded.SupportSummary(30)
		fmt.Printf("model %-12s: %d states, %d transitions (%d bytes serialized)\n",
			z, sup.States, sup.TotalTransitions, size)
	}
	fmt.Println()

	// 3. Offline bid recommendations from the reloaded models.
	fmt.Println("bid recommendations (1h interval, out-of-bid targets 0.05 / 0.01):")
	for _, z := range zones {
		tr := set.ByZone[z]
		cur := tr.PriceAt(tr.End - 1)
		age := tr.AgeAt(tr.End - 1)
		f, err := models[z].Forecast(cur, age, 60)
		if err != nil {
			log.Fatal(err)
		}
		od, err := market.OnDemandPrice(z, market.M1Small)
		if err != nil {
			log.Fatal(err)
		}
		var parts []string
		for _, target := range []float64{0.05, 0.01} {
			if bid, ok := f.MinimalBid(target, 0, od); ok {
				parts = append(parts, fmt.Sprintf("FP<=%.2f -> %s", target, bid))
			} else {
				parts = append(parts, fmt.Sprintf("FP<=%.2f -> unreachable", target))
			}
		}
		fmt.Printf("  %-12s spot %-9s %v\n", z, cur, parts)
	}
}
