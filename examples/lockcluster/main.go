// Lock cluster: run the Chubby-like distributed lock service on a
// simulated 5-replica Paxos group, survive replica failures, and rotate
// instances the way the bidding framework does between bidding
// intervals — all while lock state stays consistent.
package main

import (
	"fmt"
	"log"

	"repro/internal/lockservice"
	"repro/internal/simnet"
)

func main() {
	net := simnet.New(7)
	members := []simnet.NodeID{"az-a", "az-b", "az-c", "az-d", "az-e"}
	svc := lockservice.New(net, members)

	// Clients take locks.
	ok, seq, err := svc.Acquire("alice", "/db/leader", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice acquires /db/leader: ok=%v sequencer=%d\n", ok, seq)

	ok, _, err = svc.Acquire("bob", "/db/leader", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bob tries the held lock:   ok=%v (mutual exclusion)\n", ok)

	// Two replicas fail — the paper's tolerated worst case for a
	// 5-node majority group.
	net.Crash("az-a")
	net.Crash("az-b")
	fmt.Println("crashed az-a and az-b (2 of 5)")

	ok, _, err = svc.Acquire("bob", "/jobs/runner", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bob acquires a new lock with 2 replicas down: ok=%v\n", ok)
	fmt.Printf("holder of /db/leader is still: %q\n", svc.Holder("/db/leader"))

	// The bidding framework decided to move to fresh spot instances:
	// make-before-break rotation via Paxos view change.
	net.Restart("az-a")
	net.Restart("az-b")
	if err := svc.Rotate([]simnet.NodeID{"az-f", "az-g"}, []simnet.NodeID{"az-a", "az-b"}); err != nil {
		log.Fatal(err)
	}
	svc.Cluster().Settle(100000)
	fmt.Println("rotated az-a, az-b out; az-f, az-g in")

	fmt.Printf("holder of /db/leader after rotation: %q\n", svc.Holder("/db/leader"))
	released, err := svc.Release("alice", "/db/leader")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice releases: ok=%v\n", released)

	ok, seq, err = svc.Acquire("bob", "/db/leader", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bob finally acquires /db/leader: ok=%v sequencer=%d\n", ok, seq)

	delivered, dropped := net.Stats()
	fmt.Printf("simulated network: %d messages delivered, %d dropped\n", delivered, dropped)
}
