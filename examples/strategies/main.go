// Strategies: replay four weeks of spot market under every bidding
// strategy — the on-demand baseline, the Extra(m, p) heuristics, and
// Jupiter — and print the resulting cost/availability table, a small
// version of the paper's Figures 6 and 7.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/market"
	"repro/internal/replay"
	"repro/internal/strategy"
	"repro/internal/trace"
)

func main() {
	const trainWeeks, replayWeeks = 13, 4
	set, err := trace.Generate(trace.GenConfig{
		Seed:  99,
		Type:  market.M1Small,
		Zones: market.ExperimentZones(),
		Start: 0,
		End:   (trainWeeks + replayWeeks) * experiments.Week,
	})
	if err != nil {
		log.Fatal(err)
	}
	spec := strategy.ServiceSpec{Type: market.M1Small, BaseNodes: 5, DataShards: 1}

	strategies := []strategy.Strategy{
		strategy.OnDemand{},
		strategy.Extra{ExtraNodes: 0, Portion: 0.1},
		strategy.Extra{ExtraNodes: 0, Portion: 0.2},
		strategy.Extra{ExtraNodes: 2, Portion: 0.2},
		core.New(),
	}

	fmt.Printf("4-week lock-service replay, 1h bidding interval, target availability %.7f\n\n",
		spec.TargetAvailability())
	fmt.Printf("%-14s %-12s %-14s %-10s %s\n", "strategy", "cost", "availability", "out-of-bid", "mean nodes")
	for _, s := range strategies {
		res, err := replay.Run(replay.Config{
			Traces:                 set,
			Start:                  trainWeeks * experiments.Week,
			Spec:                   spec,
			Strategy:               s,
			IntervalMinutes:        60,
			Seed:                   99,
			InjectHardwareFailures: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %-12s %-14.6f %-10d %.2f\n",
			res.Strategy, res.Cost, res.Availability, res.OutOfBid, res.MeanGroupSize)
	}
}
