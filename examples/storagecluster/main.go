// Storage cluster: run the erasure-code based distributed storage
// service (RS-Paxos, θ(3,5)) on a simulated 5-node group: writes store
// one coded shard per replica instead of full copies, reads reconstruct
// from any 3 shards, and instance rotation re-encodes data onto the new
// membership.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/simnet"
	"repro/internal/storage"
)

func main() {
	net := simnet.New(11)
	members := []simnet.NodeID{"az-a", "az-b", "az-c", "az-d", "az-e"}
	svc, err := storage.New(net, members, 3) // θ(3,5)
	if err != nil {
		log.Fatal(err)
	}

	// Write objects: each replica stores only its θ(3,5) shard.
	objects := map[string][]byte{
		"users/1":  []byte(`{"name":"ada","role":"admin"}`),
		"users/2":  []byte(`{"name":"grace","role":"dev"}`),
		"blobs/42": bytes.Repeat([]byte("spot-market-data "), 40),
	}
	for k, v := range objects {
		if err := svc.Put(k, v); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("put %-10s (%d bytes)\n", k, len(v))
	}

	// Reads gather any 3 shards and reconstruct.
	v, found, err := svc.Get("blobs/42")
	if err != nil || !found {
		log.Fatalf("get: %v %v", found, err)
	}
	fmt.Printf("get blobs/42: %d bytes, matches=%v\n", len(v), bytes.Equal(v, objects["blobs/42"]))

	// θ(3,5) tolerates one node failure (paper §5.1.2).
	net.Crash("az-c")
	fmt.Println("crashed az-c (1 of 5 — the RS-Paxos tolerance)")
	v, found, err = svc.Get("users/1")
	if err != nil || !found {
		log.Fatalf("get with 1 down: %v %v", found, err)
	}
	fmt.Printf("get users/1 with 1 down: %s\n", v)

	// Rotation: the bidding framework swaps two instances; Rotate
	// reconfigures the Paxos group and re-encodes every key onto the
	// new view before the old instances retire.
	net.Restart("az-c")
	if err := svc.Rotate([]simnet.NodeID{"az-f", "az-g"}, []simnet.NodeID{"az-a", "az-b"}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("rotated az-a, az-b out; az-f, az-g in (rebalanced)")

	for k, want := range objects {
		got, found, err := svc.Get(k)
		if err != nil || !found || !bytes.Equal(got, want) {
			log.Fatalf("post-rotation get %s: found=%v err=%v", k, found, err)
		}
	}
	fmt.Println("all objects intact after rotation")

	if err := svc.Delete("users/2"); err != nil {
		log.Fatal(err)
	}
	_, found, err = svc.Get("users/2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("users/2 after delete: found=%v\n", found)

	delivered, dropped := net.Stats()
	fmt.Printf("simulated network: %d messages delivered, %d dropped\n", delivered, dropped)
}
