// Namespace: the Chubby-like hierarchical namespace the paper's lock
// service is modeled on — files with versioned contents and
// compare-and-swap, advisory locks with sequencers, sessions with
// leases, ephemeral nodes, and poll-based watches — replicated over
// Paxos and surviving instance rotation.
package main

import (
	"fmt"
	"log"

	"repro/internal/namespace"
	"repro/internal/simnet"
)

func main() {
	net := simnet.New(17)
	members := []simnet.NodeID{"az-a", "az-b", "az-c", "az-d", "az-e"}
	ns := namespace.New(net, members)

	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}

	// Sessions.
	must(ns.OpenSession("scheduler", 0))
	must(ns.OpenSession("worker-1", 0))

	// A small configuration tree.
	must(ns.Create("scheduler", "/cfg", true, false, nil))
	must(ns.Create("scheduler", "/cfg/leader", false, false, []byte("none")))
	must(ns.Create("scheduler", "/members", true, false, nil))
	fmt.Println("created /cfg and /members")

	// Ephemeral membership registration.
	must(ns.Create("worker-1", "/members/worker-1", false, true, []byte("10.0.0.7")))
	kids, err := ns.List("/members")
	must(err)
	fmt.Printf("members: %v\n", kids)

	// Leader election via the advisory lock + CAS on the config file.
	seq, err := ns.Acquire("scheduler", "/cfg/leader", 0)
	must(err)
	fmt.Printf("scheduler holds the leader lock, sequencer %d\n", seq)
	_, ver, err := ns.Read("/cfg/leader")
	must(err)
	newVer, err := ns.Write("scheduler", "/cfg/leader", []byte("scheduler"), ver)
	must(err)
	fmt.Printf("leader file CAS %d -> %d\n", ver, newVer)

	// Watches are poll-based event logs.
	events := ns.Events("/cfg", 0)
	fmt.Printf("%d events under /cfg:\n", len(events))
	for _, e := range events {
		fmt.Printf("  #%d %-14s %s\n", e.Seq, e.Type, e.Path)
	}

	// A session ending takes its ephemeral nodes with it.
	must(ns.CloseSession("worker-1"))
	kids, err = ns.List("/members")
	must(err)
	fmt.Printf("members after worker-1 session closed: %v\n", kids)

	// Rotation: replace two replicas; all state survives (snapshot
	// transfer + Paxos view change).
	must(ns.Cluster().Reconfigure([]simnet.NodeID{"az-c", "az-d", "az-e", "az-f", "az-g"}))
	ns.Cluster().StopNode("az-a")
	ns.Cluster().StopNode("az-b")
	ns.Cluster().Settle(100000)
	data, _, err := ns.Read("/cfg/leader")
	must(err)
	fmt.Printf("after rotating 2 replicas, /cfg/leader = %q, lock holder = %q\n",
		data, ns.LockHolder("/cfg/leader"))
}
